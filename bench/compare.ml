(* Benchmark-regression gate for ci.sh and the CI workflow.

     compare.exe BASELINE.json COLD.json WARM.json

   All three files are `bench --json` outputs on the same workload.
   The gate fails (exit 1) when any of these hold:

     - the cold run's total wall time regressed more than
       DEBUGTUNER_BENCH_TOLERANCE (default 0.20 = +20%) over the
       committed baseline;
     - the warm (populated cache) run is not at least
       DEBUGTUNER_WARM_FLOOR (default 3.0) times faster than the cold
       run;
     - the warm run's disk-store hit rate (sum of store/<x>/hits over
       hits + misses) is below DEBUGTUNER_HIT_FLOOR (default 0.9), or
       the warm run recorded no store activity at all;
     - the cold run's pass-prefix planner recorded no sharing at all
       (prefix/hits = 0), or its hit rate (prefix/hits over
       hits + misses) is below DEBUGTUNER_PREFIX_FLOOR (default 0.5).
       The cold run is the one that gates: a warm run peeks everything
       out of the persistent store and plans nothing;
     - the serve scenario's warm request p50 is not at least
       DEBUGTUNER_SERVE_FLOOR (default 10.0) times faster than its
       cold one-shot (timing rows "serve-cold-one-shot" and
       "serve-warm-p50" of the cold json — the workload must include
       `serve` in its --only list), or those rows are missing;
     - the serve scenario's 4-client executor-pool throughput (timing
       rows "serve-serialized-4c" / "serve-concurrent-4c" of the cold
       json) is not at least DEBUGTUNER_SERVE_CONCURRENCY_FLOOR
       (default 2.5) times the serialized inline server's, or those
       rows are missing. CI derives the floor from nproc: parallel
       speedup needs cores, so a single-core runner only asserts that
       the pool does not collapse throughput;
     - the shard scenario's 2-process critical path (timing rows
       "shard-1-proc" / "shard-2-proc" of the cold json — the workload
       must include `shard` in its --only list) is not at least
       DEBUGTUNER_SHARD_FLOOR (default 1.5) times faster than the
       single-process run, or those rows are missing;
     - the search scenario's Pareto front fails to weakly dominate
       every greedy dy point, or its dominance margin (counter rows
       search/greedy_total, search/greedy_dominated and
       search/margin_ppm of the cold json — the workload must include
       `search` in its --only list) is below DEBUGTUNER_SEARCH_FLOOR
       (default 0.0).

   Volatile numbers (absolute seconds, ratios) are printed on lines
   starting with '#', so CI determinism diffs can drop them; the
   PASS/FAIL verdict lines are stable. No dependencies beyond the
   stdlib: the JSON is the harness's own flat output, scanned with
   substring matching rather than a parser. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let find_sub text needle from =
  let nl = String.length needle and tl = String.length text in
  let rec go i =
    if i + nl > tl then raise Not_found
    else if String.sub text i nl = needle then i
    else go (i + 1)
  in
  go from

let is_num_char = function
  | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
  | _ -> false

let number_after text pos =
  let n = String.length text in
  let j = ref pos in
  while !j < n && (text.[!j] = ' ' || text.[!j] = '\t') do
    incr j
  done;
  let k = ref !j in
  while !k < n && is_num_char text.[!k] do
    incr k
  done;
  if !k > !j then float_of_string_opt (String.sub text !j (!k - !j)) else None

(** The first ["key": <number>] in [text]. *)
let scan_float text key =
  let needle = "\"" ^ key ^ "\":" in
  match find_sub text needle 0 with
  | exception Not_found -> None
  | i -> number_after text (i + String.length needle)

(** Every [{"name": "<name>", "value": <int>}] row of the stats table. *)
let counter_rows text =
  let rows = ref [] in
  let pos = ref 0 in
  (try
     while true do
       let i = find_sub text "{\"name\": \"" !pos in
       let name_start = i + String.length "{\"name\": \"" in
       let name_end = String.index_from text name_start '"' in
       let name = String.sub text name_start (name_end - name_start) in
       let v = find_sub text "\"value\":" name_end in
       (match number_after text (v + String.length "\"value\":") with
       | Some f -> rows := (name, int_of_float f) :: !rows
       | None -> ());
       pos := v
     done
   with Not_found -> ());
  List.rev !rows

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let has_suffix suf s =
  let n = String.length s and m = String.length suf in
  n >= m && String.sub s (n - m) m = suf

let sum_store rows ~suffix =
  List.fold_left
    (fun acc (name, v) ->
      if has_prefix "store/" name && has_suffix suffix name then acc + v
      else acc)
    0 rows

let env_float name default =
  match Sys.getenv_opt name with
  | Some s -> ( match float_of_string_opt s with Some f -> f | None -> default)
  | None -> default

let () =
  (match Sys.argv with
  | [| _; _; _; _ |] -> ()
  | _ ->
      prerr_endline "usage: compare.exe BASELINE.json COLD.json WARM.json";
      exit 2);
  let baseline = read_file Sys.argv.(1)
  and cold = read_file Sys.argv.(2)
  and warm = read_file Sys.argv.(3) in
  let tolerance = env_float "DEBUGTUNER_BENCH_TOLERANCE" 0.20 in
  let warm_floor = env_float "DEBUGTUNER_WARM_FLOOR" 3.0 in
  let hit_floor = env_float "DEBUGTUNER_HIT_FLOOR" 0.9 in
  let total name text =
    match scan_float text "total_seconds" with
    | Some s -> s
    | None ->
        Printf.eprintf "%s: no total_seconds field\n" name;
        exit 2
  in
  let base_s = total "baseline" baseline
  and cold_s = total "cold" cold
  and warm_s = total "warm" warm in
  let failures = ref 0 in
  let verdict ok what detail =
    if ok then Printf.printf "PASS %s\n" what
    else begin
      incr failures;
      Printf.printf "FAIL %s\n" what
    end;
    Printf.printf "# %s\n" detail
  in
  let bound = base_s *. (1.0 +. tolerance) in
  verdict (cold_s <= bound)
    (Printf.sprintf "cold wall time within +%.0f%% of baseline"
       (tolerance *. 100.0))
    (Printf.sprintf "baseline %.3fs, cold %.3fs, bound %.3fs" base_s cold_s
       bound);
  let speedup = if warm_s > 0.0 then cold_s /. warm_s else infinity in
  verdict (speedup >= warm_floor)
    (Printf.sprintf "warm run at least %.1fx faster than cold" warm_floor)
    (Printf.sprintf "cold %.3fs, warm %.3fs, speedup %.2fx" cold_s warm_s
       speedup);
  let rows = counter_rows warm in
  let hits = sum_store rows ~suffix:"/hits"
  and misses = sum_store rows ~suffix:"/misses" in
  let rate =
    if hits + misses = 0 then 0.0
    else float_of_int hits /. float_of_int (hits + misses)
  in
  verdict
    (hits + misses > 0 && rate >= hit_floor)
    (Printf.sprintf "warm store hit rate at least %.0f%%" (hit_floor *. 100.0))
    (Printf.sprintf "hits %d, misses %d, rate %.3f" hits misses rate);
  let prefix_floor = env_float "DEBUGTUNER_PREFIX_FLOOR" 0.5 in
  let cold_rows = counter_rows cold in
  let counter rows name =
    match List.assoc_opt name rows with Some v -> v | None -> 0
  in
  let p_hits = counter cold_rows "prefix/hits"
  and p_misses = counter cold_rows "prefix/misses" in
  let p_rate =
    if p_hits + p_misses = 0 then 0.0
    else float_of_int p_hits /. float_of_int (p_hits + p_misses)
  in
  verdict
    (p_hits > 0 && p_rate >= prefix_floor)
    (Printf.sprintf "cold prefix-cache hit rate at least %.0f%%"
       (prefix_floor *. 100.0))
    (Printf.sprintf "prefix hits %d, misses %d, rate %.3f, merged %d" p_hits
       p_misses p_rate
       (counter cold_rows "prefix/merged"));
  (* Daemon latency gate: a warm request against the persistent server
     must be far cheaper than the cold one-shot that pays the compile. *)
  let serve_floor = env_float "DEBUGTUNER_SERVE_FLOOR" 10.0 in
  let timing_row text name =
    let needle = Printf.sprintf "{\"name\": %S, \"seconds\":" name in
    match find_sub text needle 0 with
    | exception Not_found -> None
    | i -> number_after text (i + String.length needle)
  in
  let serve_what =
    Printf.sprintf "serve warm p50 at least %.0fx faster than cold one-shot"
      serve_floor
  in
  (match
     ( timing_row cold "serve-cold-one-shot",
       timing_row cold "serve-warm-p50" )
   with
  | Some c, Some w ->
      let ratio = if w > 0.0 then c /. w else infinity in
      verdict (ratio >= serve_floor) serve_what
        (Printf.sprintf "cold one-shot %.3fs, warm p50 %.3fs, ratio %.1fx" c w
           ratio)
  | _ ->
      verdict false serve_what
        "serve timing rows missing from cold json (include `serve` in --only)");
  (* Daemon concurrency gate: the executor pool must beat the
     serialized (inline, executors=0) server on the 4-client
     compile-heavy workload. Genuine parallel speedup needs cores — CI
     sets the floor from nproc (>= 2.5x with 4+ cores; a single-core
     runner can only assert the pool does not collapse throughput). *)
  let conc_floor = env_float "DEBUGTUNER_SERVE_CONCURRENCY_FLOOR" 2.5 in
  let conc_what =
    Printf.sprintf
      "serve executor pool at least %.2fx serialized throughput at 4 clients"
      conc_floor
  in
  (match
     ( timing_row cold "serve-serialized-4c",
       timing_row cold "serve-concurrent-4c" )
   with
  | Some s, Some c ->
      let ratio = if c > 0.0 then s /. c else infinity in
      verdict (ratio >= conc_floor) conc_what
        (Printf.sprintf "serialized %.3fs, concurrent %.3fs, speedup %.2fx" s c
           ratio)
  | _ ->
      verdict false conc_what
        "serve concurrency timing rows missing from cold json (include \
         `serve` in --only)");
  (* VM core gate: the pre-decoded direct-threaded interpreter must
     beat the reference core by a wide margin on the hot-kernel
     scenario (both rows time the same fixed iteration count, so the
     ratio is the per-run speedup). *)
  let vm_floor = env_float "DEBUGTUNER_VM_FLOOR" 5.0 in
  let vm_what =
    Printf.sprintf "vm fast core at least %.0fx faster than reference"
      vm_floor
  in
  (match (timing_row cold "vm-reference", timing_row cold "vm-fast") with
  | Some r, Some f ->
      let ratio = if f > 0.0 then r /. f else infinity in
      verdict (ratio >= vm_floor) vm_what
        (Printf.sprintf "reference %.3fs, fast %.3fs, speedup %.1fx" r f ratio)
  | _ ->
      verdict false vm_what
        "vm timing rows missing from cold json (include `vm` in --only)");
  (* Shard scaling gate: splitting the corpus over 2 worker processes
     must cut the critical path (the slowest shard's own wall clock —
     see the shard scenario in main.ml) by the floor. This checks the
     property the code controls — balanced slices, no duplicated work —
     independently of how many cores the CI machine has. *)
  let shard_floor = env_float "DEBUGTUNER_SHARD_FLOOR" 1.5 in
  let shard_what =
    Printf.sprintf
      "2-process shard critical path at least %.1fx faster than 1-process"
      shard_floor
  in
  (match (timing_row cold "shard-1-proc", timing_row cold "shard-2-proc") with
  | Some t1, Some t2 ->
      let ratio = if t2 > 0.0 then t1 /. t2 else infinity in
      let t4 =
        match timing_row cold "shard-4-proc" with Some t -> t | None -> 0.0
      in
      verdict (ratio >= shard_floor) shard_what
        (Printf.sprintf
           "1-proc %.3fs, 2-proc slowest shard %.3fs (%.2fx), 4-proc %.3fs"
           t1 t2 ratio t4)
  | _ ->
      verdict false shard_what
        "shard timing rows missing from cold json (include `shard` in --only)");
  (* Pareto dominance gate: the searched front at the pinned
     (strategy, budget, seed) must weakly dominate every greedy dy
     point, with a margin of at least DEBUGTUNER_SEARCH_FLOOR (default
     0.0 — the greedy points are seeded into the search, so falling
     below 0 means the search layer *lost* configurations it was
     handed). The counters come from the search scenario of the cold
     run: search/greedy_total, search/greedy_dominated, and
     search/margin_ppm (the margin in parts-per-million, so the counter
     table stays integral). *)
  let search_floor = env_float "DEBUGTUNER_SEARCH_FLOOR" 0.0 in
  let search_what =
    Printf.sprintf
      "searched front dominates every greedy dy point (margin >= %.4f)"
      search_floor
  in
  let g_total = counter cold_rows "search/greedy_total"
  and g_dom = counter cold_rows "search/greedy_dominated"
  and margin = float_of_int (counter cold_rows "search/margin_ppm") /. 1e6 in
  if g_total = 0 then
    verdict false search_what
      "search counters missing from cold json (include `search` in --only)"
  else
    verdict
      (g_dom = g_total && margin >= search_floor)
      search_what
      (Printf.sprintf "%d/%d greedy points dominated, margin %.6f" g_dom
         g_total margin);
  if !failures > 0 then begin
    Printf.printf "bench-compare: %d check(s) FAILED\n" !failures;
    exit 1
  end;
  print_endline "bench-compare: all checks passed"
