(* Pass ranking: the DebugTuner workflow of Figure 1 on a small slice of
   the test suite.

     dune exec examples/rank_passes.exe

   Prepares three suite programs (fuzzing-derived corpora), sweeps every
   pass of gcc -O2 with single-pass disabling, prints the cross-program
   ranking, and builds the O2-d3 configuration from its top entries. *)

module C = Debugtuner.Config
module E = Debugtuner.Evaluation
module R = Debugtuner.Ranking

let () =
  print_endline "== Ranking gcc -O2 passes on bzip2, libpng, zydis ==\n";
  let programs = [ "bzip2"; "libpng"; "zydis" ] in
  let prepared = List.map (fun n -> E.prepare (Programs.find n)) programs in
  let config = C.make C.Gcc C.O2 in

  (* Baseline debuggability of the standard level. *)
  List.iter2
    (fun name p ->
      Printf.printf "%-8s O2 hybrid product: %.4f\n" name (E.product p config))
    programs prepared;

  (* The sweep: one configuration per pass, each with that pass's every
     instance disabled (the paper's OptPassGate analog). *)
  let lr = R.rank prepared config in
  Printf.printf "\n%-28s %10s %28s\n" "pass (by average rank)" "avg +%"
    "(improved/neutral/regressed)";
  List.iteri
    (fun i (e : R.pass_effect) ->
      if i < 10 then
        Printf.printf "%2d. %-24s %9.2f%% %20d/%d/%d\n" (i + 1) e.R.pe_pass
          e.R.pe_geo_increment_pct e.R.pe_programs_improved
          e.R.pe_programs_neutral e.R.pe_programs_regressed)
    lr.R.lr_effects;

  (* Build O2-d3 (top three, inliner excepted) and re-measure. *)
  let d3 = Debugtuner.Tuning.dy_config lr ~y:3 in
  Printf.printf "\nO2-d3 disables: %s\n" (String.concat ", " d3.C.disabled);
  List.iter2
    (fun name p ->
      let base = E.product p config in
      let tuned = E.product p d3 in
      Printf.printf "%-8s O2 %.4f -> O2-d3 %.4f  (%+.1f%%)\n" name base tuned
        (Util.Stats.pct_delta base tuned))
    programs prepared
