(* Building a debug-information test corpus the paper's way (Section IV):

     dune exec examples/fuzz_corpus.exe

   coverage-guided fuzzing over the O0 binary, afl-cmin-style
   minimization, then debug-trace set-cover pruning — ending with the
   per-harness input sets a DebugTuner evaluation uses. *)

module C = Debugtuner.Config
module T = Debugtuner.Toolchain

let () =
  print_endline "== Corpus construction for zydis ==\n";
  let program = Programs.find "zydis" in
  let ast = Suite_types.ast program in
  let roots = Suite_types.roots program in
  let o0 = T.compile ast ~config:(C.make C.Gcc C.O0) ~roots in
  List.iter
    (fun (h : Suite_types.harness) ->
      let entry = h.Suite_types.h_entry in
      Printf.printf "harness %s (entry %s), %d seed inputs\n"
        h.Suite_types.h_name entry
        (List.length h.Suite_types.h_seeds);
      (* 1. Fuzz: the corpus collects every input that found a new edge. *)
      let fz =
        Fuzzer.fuzz o0 ~entry ~seeds:h.Suite_types.h_seeds ~budget:600 ~seed:11
      in
      Printf.printf "  fuzzing: %d execs, %d edges, corpus of %d inputs\n"
        fz.Fuzzer.total_execs fz.Fuzzer.edges_found
        (List.length fz.Fuzzer.corpus);
      let raw =
        h.Suite_types.h_seeds
        @ List.map (fun (c : Fuzzer.corpus_entry) -> c.Fuzzer.data) fz.Fuzzer.corpus
      in
      (* 2. afl-cmin analog: smallest subset with the same edge set. *)
      let minimized = Cmin.minimize o0 ~entry raw in
      Printf.printf "  cmin: %d -> %d inputs (%.1f%% reduction)\n"
        minimized.Cmin.original
        (List.length minimized.Cmin.kept)
        minimized.Cmin.reduction_pct;
      (* 3. Debug-trace pruning: drop inputs stepping no new line. *)
      let pruned = Trace_prune.prune o0 ~entry minimized.Cmin.kept in
      Printf.printf "  trace pruning: %d -> %d inputs\n"
        (List.length minimized.Cmin.kept)
        (List.length pruned);
      (* The resulting trace is the evaluation baseline. *)
      let t = Debugger.trace o0 ~entry ~inputs:pruned in
      Printf.printf "  debug trace: %d/%d steppable lines stepped (%.1f%%)\n\n"
        (List.length (Debugger.stepped_lines t))
        (List.length t.Debugger.steppable)
        (100.0
        *. float_of_int (List.length (Debugger.stepped_lines t))
        /. float_of_int (max 1 (List.length t.Debugger.steppable))))
    program.Suite_types.p_harnesses
