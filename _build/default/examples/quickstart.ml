(* Quickstart: compile a MiniC program at O0 and O2, run both, extract
   debug traces, and compute the paper's debug-information metrics.

     dune exec examples/quickstart.exe

   This walks the public API end to end:
   parse -> compile (Toolchain) -> execute (Vm) -> trace (Debugger) ->
   measure (Metrics). *)

module C = Debugtuner.Config
module T = Debugtuner.Toolchain

let source =
  {|
int checksum(int seed) {
  int acc = seed;
  int i = 0;
  while (i < 8) {
    int term = (acc << 1) ^ i;
    acc = acc + term % 97;
    i = i + 1;
  }
  return acc;
}

int main() {
  int total = 0;
  while (!eof()) {
    int v = input();
    total = total + checksum(v);
  }
  output(total);
  return 0;
}
|}

let () =
  print_endline "== DebugTuner quickstart ==\n";
  (* 1. Parse and semantically check the program. *)
  let ast = Minic.Typecheck.parse_and_check source in
  let roots = [ "main" ] in

  (* 2. Compile the unoptimized baseline and an optimized build. *)
  let o0 = T.compile ast ~config:(C.make C.Gcc C.O0) ~roots in
  let o2 = T.compile ast ~config:(C.make C.Gcc C.O2) ~roots in
  Printf.printf "code size: %d instructions at O0, %d at O2\n"
    (Array.length o0.Emit.code) (Array.length o2.Emit.code);

  (* 3. Run both on the same input: identical output, different cost. *)
  let input = [ 3; 14; 15; 92; 65 ] in
  let r0 = Vm.run o0 ~entry:"main" ~input Vm.default_opts in
  let r2 = Vm.run o2 ~entry:"main" ~input Vm.default_opts in
  assert (r0.Vm.output = r2.Vm.output);
  Printf.printf "output: [%s]  (identical at both levels)\n"
    (String.concat "; " (List.map string_of_int r0.Vm.output));
  Printf.printf "cost: %d cycles at O0, %d at O2  (speedup %.2fx)\n\n"
    r0.Vm.cost r2.Vm.cost
    (float_of_int r0.Vm.cost /. float_of_int r2.Vm.cost);

  (* 4. Debug sessions: temporary breakpoint on every line-table line. *)
  let t0 = Debugger.trace o0 ~entry:"main" ~inputs:[ input ] in
  let t2 = Debugger.trace o2 ~entry:"main" ~inputs:[ input ] in
  Printf.printf "debugger stepped %d lines at O0, %d at O2\n"
    (List.length (Debugger.stepped_lines t0))
    (List.length (Debugger.stepped_lines t2));
  List.iter
    (fun line ->
      let vars set =
        Debugger.vars_at set line
        |> Debugger.Var_set.elements
        |> List.map (fun (v : Ir.var_id) -> v.Ir.name)
        |> String.concat ","
      in
      Printf.printf "  line %2d: O0 shows {%s}  O2 shows {%s}\n" line (vars t0)
        (vars t2))
    (Debugger.stepped_lines t0);

  (* 5. The four metric methods of the paper's Section II. *)
  let m =
    Metrics.all
      {
        Metrics.defranges = Minic.Defranges.analyze ast;
        unopt_trace = t0;
        opt_trace = t2;
        unopt_bin = o0;
        opt_bin = o2;
      }
  in
  let show name (s : Metrics.score) =
    Printf.printf "  %-10s availability=%.4f line-coverage=%.4f product=%.4f\n"
      name s.Metrics.availability s.Metrics.line_coverage s.Metrics.product
  in
  print_endline "\nmetrics for the O2 build (vs the O0 baseline):";
  show "static" m.Metrics.m_static;
  show "static-dbg" m.Metrics.m_static_dbg;
  show "dynamic" m.Metrics.m_dynamic;
  show "hybrid" m.Metrics.m_hybrid;
  print_endline "\nThe hybrid product is the paper's headline score."
