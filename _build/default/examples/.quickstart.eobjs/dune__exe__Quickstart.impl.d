examples/quickstart.ml: Array Debugger Debugtuner Emit Ir List Metrics Minic Printf String Vm
