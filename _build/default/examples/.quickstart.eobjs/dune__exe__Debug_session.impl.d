examples/debug_session.ml: Debugtuner List Minic Printf Session String
