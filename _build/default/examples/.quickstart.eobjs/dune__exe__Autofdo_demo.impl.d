examples/autofdo_demo.ml: Debugtuner Dwarfish Emit List Printf Spec Suite_types Vm
