examples/rank_passes.ml: Debugtuner List Printf Programs String Util
