examples/inspect_binary.mli:
