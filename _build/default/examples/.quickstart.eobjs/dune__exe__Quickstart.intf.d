examples/quickstart.mli:
