examples/autofdo_demo.mli:
