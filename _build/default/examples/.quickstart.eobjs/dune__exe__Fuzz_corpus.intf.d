examples/fuzz_corpus.mli:
