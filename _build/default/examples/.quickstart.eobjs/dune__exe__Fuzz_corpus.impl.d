examples/fuzz_corpus.ml: Cmin Debugger Debugtuner Fuzzer List Printf Programs Suite_types Trace_prune
