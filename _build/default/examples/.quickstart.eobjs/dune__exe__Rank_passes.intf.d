examples/rank_passes.mli:
