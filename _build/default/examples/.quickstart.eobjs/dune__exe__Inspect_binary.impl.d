examples/inspect_binary.ml: Debug_verify Debugtuner Dwarf_encode Dwarfdump Emit List Objdump Printf Programs Suite_types
