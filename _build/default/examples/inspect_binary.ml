(* Binary-inspection tooling tour: compile one program at two levels and
   run the whole toolbox over each — structural verification
   (llvm-dwarfdump --verify analog), the section dump, location
   statistics (llvm-locstats analog), the disassembly listing, and the
   encoded DWARF section sizes.

   Run with: dune exec examples/inspect_binary.exe *)

module C = Debugtuner.Config
module T = Debugtuner.Toolchain

let () =
  let p = Programs.find "zlib" in
  let ast = Suite_types.ast p in
  List.iter
    (fun level ->
      let cfg = C.make C.Gcc level in
      let bin = T.compile ast ~config:cfg ~roots:(Suite_types.roots p) in
      Printf.printf "================ %s at %s ================\n"
        p.Suite_types.p_name (C.name cfg);
      Printf.printf "%s\n" (Dwarfdump.summary bin);

      (* 1. Verify: a healthy compilation must be clean. *)
      print_string (Debug_verify.report (Debug_verify.verify bin));

      (* 2. Location statistics: how much of its scope each variable's
         location list covers. *)
      print_string (Dwarfdump.locstats_to_string (Dwarfdump.locstats bin));

      (* 3. Encoded sizes: the line program shrinks with optimization
         while the location lists fragment and grow. *)
      let line, locs, total = Dwarf_encode.section_sizes bin.Emit.debug in
      Printf.printf
        ".debug_line %dB  .debug_loc %dB  total %dB (DWARF wire encoding)\n\n"
        line locs total;

      (* 4. One function's listing, lines interleaved. *)
      print_string (Objdump.disassemble ~func:"window_push" bin);
      print_newline ())
    [ C.O0; C.O2 ];
  print_endline
    "The same views are available from the CLI: debugtuner verify / dump /\n\
     disasm / dwarf-size."
