(* The paper's Figure 1 scenario, live: the same scripted debug session
   replayed against the same program compiled at O0, gcc -Og and gcc
   -O2. At O0 every line takes a breakpoint and every variable prints;
   as optimization rises, lines fall out of the line table and
   variables print as <optimized out> — the exact artifacts DebugTuner
   measures.

   Run with: dune exec examples/debug_session.exe *)

module C = Debugtuner.Config
module T = Debugtuner.Toolchain

(* A distilled bug hunt: checksum() mangles its accumulator, and the
   developer wants to watch `acc` evolve across the loop. *)
let src =
  String.concat "\n"
    [
      "int checksum(int seed) {" (* 1 *);
      "  int acc = seed;" (* 2 *);
      "  int i = 0;" (* 3 *);
      "  while (i < 4) {" (* 4 *);
      "    int digit = input();" (* 5 *);
      "    acc = acc * 31 + digit;" (* 6 *);
      "    i = i + 1;" (* 7 *);
      "  }" (* 8 *);
      "  return acc;" (* 9 *);
      "}" (* 10 *);
      "int main() {" (* 11 *);
      "  int sum = checksum(7);" (* 12 *);
      "  output(sum);" (* 13 *);
      "  return 0;" (* 14 *);
      "}";
    ]

let script =
  [
    "break 6" (* the accumulator update — gone entirely at O2 *);
    "break 5" (* the input() line, which survives every level *);
    "run 1,2,3,4" (* the four digits *);
    "info line";
    "print acc";
    "print digit";
    "print i";
    "continue";
    "info line";
    "print acc";
    "info locals";
    "bt";
    "delete 5";
    "delete 6";
    "continue" (* runs to exit *);
  ]

let () =
  let ast = Minic.Typecheck.parse_and_check src in
  List.iter
    (fun cfg ->
      let bin = T.compile ast ~config:cfg ~roots:[ "main" ] in
      Printf.printf "================ %s ================\n"
        (Debugtuner.Config.name cfg);
      print_string (Session.script bin ~entry:"main" script);
      print_newline ())
    [ C.make C.Gcc C.O0; C.make C.Gcc C.Og; C.make C.Gcc C.O2 ];
  print_endline
    "The O0 session watches acc converge; higher levels lose breakpoint\n\
     lines and variable values. `debugtuner measure` quantifies exactly\n\
     this, and `debugtuner tune` picks the passes to disable to get the\n\
     session back."
