(** Tests over the shipped program suites: every program parses, checks,
    compiles at every configuration, terminates on its seeds, and the
    optimized builds agree with O0 (differential correctness). *)

module C = Debugtuner.Config
module T = Debugtuner.Toolchain

let all_configs =
  List.concat_map
    (fun comp ->
      List.map (fun l -> C.make comp l) (C.standard_levels comp))
    [ C.Gcc; C.Clang ]

let check_program (p : Suite_types.sprogram) =
  let ast = Suite_types.ast p in
  let roots = Suite_types.roots p in
  let o0 = T.compile ast ~config:(C.make C.Gcc C.O0) ~roots in
  List.iter
    (fun cfg ->
      let bin = T.compile ast ~config:cfg ~roots in
      List.iter
        (fun (h : Suite_types.harness) ->
          let inputs =
            if h.Suite_types.h_seeds = [] then [ [] ] else h.Suite_types.h_seeds
          in
          List.iter
            (fun input ->
              let r0 = Vm.run o0 ~entry:h.Suite_types.h_entry ~input Vm.default_opts in
              let r1 = Vm.run bin ~entry:h.Suite_types.h_entry ~input Vm.default_opts in
              Alcotest.(check bool)
                (Printf.sprintf "%s %s terminates" p.Suite_types.p_name
                   (C.name cfg))
                false r1.Vm.timed_out;
              Alcotest.(check (list int))
                (Printf.sprintf "%s %s %s output" p.Suite_types.p_name
                   (C.name cfg) h.Suite_types.h_name)
                r0.Vm.output r1.Vm.output)
            inputs)
        p.Suite_types.p_harnesses)
    all_configs

let suite_case (p : Suite_types.sprogram) =
  Alcotest.test_case p.Suite_types.p_name `Quick (fun () -> check_program p)

let test_suite_has_13_programs () =
  Alcotest.(check int) "13 programs like the paper" 13
    (List.length Programs.all);
  let names = List.sort_uniq compare Programs.names in
  Alcotest.(check int) "unique names" 13 (List.length names)

let test_spec_count () =
  Alcotest.(check int) "10 SPEC analogs" 10 (List.length Spec.all)

let test_spec_runs_are_substantial () =
  (* SPEC analogs must run long enough for speedups to be meaningful. *)
  List.iter
    (fun (p : Suite_types.sprogram) ->
      let ast = Suite_types.ast p in
      let bin = T.compile ast ~config:(C.make C.Gcc C.O0) ~roots:(Suite_types.roots p) in
      let r = Vm.run bin ~entry:"main" ~input:[] Vm.default_opts in
      Alcotest.(check bool)
        (p.Suite_types.p_name ^ " runs >= 20k instrs")
        true (r.Vm.instrs >= 20_000))
    Spec.all

let test_selfcomp_workload () =
  let w = Selfcomp.workload ~seed:1 ~units:10 in
  let ast = Suite_types.ast Selfcomp.program in
  let bin = T.compile ast ~config:(C.make C.Gcc C.O0) ~roots:[ "main" ] in
  let r = Vm.run bin ~entry:"main" ~input:w Vm.default_opts in
  (* First output is the number of units compiled. *)
  match r.Vm.output with
  | units :: _ -> Alcotest.(check int) "all units compiled" 10 units
  | [] -> Alcotest.fail "no output"

let test_selfcomp_workload_deterministic () =
  Alcotest.(check (list int)) "same workload"
    (Selfcomp.workload ~seed:9 ~units:5)
    (Selfcomp.workload ~seed:9 ~units:5)

let test_synth_programs_distinct () =
  let a = Synth.generate ~seed:1 and b = Synth.generate ~seed:2 in
  Alcotest.(check bool) "different seeds differ" true (a <> b);
  Alcotest.(check string) "same seed identical" a (Synth.generate ~seed:1)

let test_synth_terminates_closed () =
  for seed = 100 to 110 do
    let p = Synth.program ~seed in
    let ast = Suite_types.ast p in
    let bin = T.compile ast ~config:(C.make C.Gcc C.O0) ~roots:[ "main" ] in
    let r = Vm.run bin ~entry:"main" ~input:[] Vm.default_opts in
    Alcotest.(check bool)
      (Printf.sprintf "synth-%d terminates" seed)
      false r.Vm.timed_out
  done

let tests =
  [
    Alcotest.test_case "13 programs" `Quick test_suite_has_13_programs;
    Alcotest.test_case "10 SPEC analogs" `Quick test_spec_count;
    Alcotest.test_case "SPEC runs substantial" `Quick test_spec_runs_are_substantial;
    Alcotest.test_case "selfcomp workload" `Quick test_selfcomp_workload;
    Alcotest.test_case "selfcomp deterministic" `Quick
      test_selfcomp_workload_deterministic;
    Alcotest.test_case "synth distinct/deterministic" `Quick
      test_synth_programs_distinct;
    Alcotest.test_case "synth terminates" `Quick test_synth_terminates_closed;
  ]
  @ List.map suite_case Programs.all
  @ List.map suite_case Spec.all
  @ [ suite_case Selfcomp.program ]
