(** Edge-case tests for the optimization passes: the safety guards each
    pass must respect, exercised directly. *)

let lower_promoted src =
  let ast = Minic.Typecheck.parse_and_check src in
  let p = Lower.lower_program ast in
  Hashtbl.iter (fun _ fn -> Mem2reg.run fn) p.Ir.funcs;
  Cleanup.run_program p;
  p

let run_bin p ~entry ~input =
  let fns =
    Hashtbl.fold (fun _ fn acc -> fn :: acc) p.Ir.funcs []
    |> List.sort (fun (a : Ir.fn) b -> compare a.Ir.f_line b.Ir.f_line)
  in
  let mfuncs = List.map (fun fn -> Isel.translate_fn fn Mach.opts_o0) fns in
  let bin = Emit.emit { Mach.mfuncs; mglobals = p.Ir.prog_globals } in
  (Vm.run bin ~entry ~input Vm.default_opts).Vm.output

(* ------------------------------------------------------------------ *)

let test_inline_skips_recursive () =
  let src =
    "int rec_sum(int n) { if (n < 1) { return 0; } return n + rec_sum(n - 1); }\n\
     int main() { output(rec_sum(4)); return 0; }"
  in
  let p = lower_promoted src in
  ignore
    (Inline.run p
       ~policy:{ Inline.policy_off with small_threshold = 100; called_once = true }
       ~roots:[ "main" ]);
  Verify.check p;
  Alcotest.(check bool) "recursive callee kept" true
    (Hashtbl.mem p.Ir.funcs "rec_sum");
  Alcotest.(check (list int)) "semantics" [ 10 ] (run_bin p ~entry:"main" ~input:[])

let test_inline_caller_size_budget () =
  (* A caller at its size budget must stop inlining, not blow up. *)
  let src =
    "int h(int x) { return x * 2 + 1; }\n\
     int main() {\n\
     int s = 0;\n\
     s = s + h(1);\n\
     s = s + h(2);\n\
     s = s + h(3);\n\
     output(s);\n\
     return 0;\n\
     }"
  in
  let p = lower_promoted src in
  ignore
    (Inline.run p
       ~policy:
         { Inline.policy_off with small_threshold = 100; max_caller_size = 1 }
       ~roots:[ "main" ]);
  Verify.check p;
  Alcotest.(check (list int)) "still correct" [ 15 ]
    (run_bin p ~entry:"main" ~input:[])

let test_jump_threading_if_chain () =
  (* The dominating-condition case: op == 1 implies op != 2. *)
  let src =
    "int f(int op) {\n\
     int r = 0;\n\
     if (op == 1) {\n\
     r = r + 10;\n\
     }\n\
     if (op == 2) {\n\
     r = r + 20;\n\
     }\n\
     if (op == 3) {\n\
     r = r + 30;\n\
     }\n\
     output(r);\n\
     return r;\n\
     }\n\
     int main() { f(input()); return 0; }"
  in
  let p = lower_promoted src in
  let fn = Hashtbl.find p.Ir.funcs "f" in
  let threaded = Jump_threading.run fn in
  Verify.check p;
  Alcotest.(check bool) "if-chain threads" true (threaded > 0);
  List.iter
    (fun (op, expected) ->
      Alcotest.(check (list int))
        (Printf.sprintf "op=%d" op)
        [ expected ]
        (run_bin p ~entry:"main" ~input:[ op ]))
    [ (1, 10); (2, 20); (3, 30); (4, 0) ]

let test_rotate_nested_loops () =
  let src =
    "int f() {\n\
     int total = 0;\n\
     int i = 0;\n\
     while (i < 4) {\n\
     int j = 0;\n\
     while (j < 3) {\n\
     total = total + i * j;\n\
     j = j + 1;\n\
     }\n\
     i = i + 1;\n\
     }\n\
     output(total);\n\
     return total;\n\
     }"
  in
  let p = lower_promoted src in
  let fn = Hashtbl.find p.Ir.funcs "f" in
  let rotated = Loop_rotate.run fn in
  Verify.check p;
  Alcotest.(check bool) "both loops rotated" true (rotated >= 2);
  (* sum over i<4, j<3 of i*j = (0+1+2+3)*(0+1+2) = 18 *)
  Alcotest.(check (list int)) "nested semantics" [ 18 ]
    (run_bin p ~entry:"f" ~input:[])

let test_unroll_zero_and_one_iteration () =
  let src =
    "int f() {\n\
     int n = input();\n\
     int s = 0;\n\
     int i = 0;\n\
     while (i < n) {\n\
     s = s + 1;\n\
     i = i + 1;\n\
     }\n\
     output(s);\n\
     return 0;\n\
     }"
  in
  let p = lower_promoted src in
  Hashtbl.iter
    (fun _ fn ->
      ignore (Loop_rotate.run fn);
      Cleanup.run fn;
      ignore (Loop_unroll.run fn ~factor:4);
      Cleanup.run fn)
    p.Ir.funcs;
  Verify.check p;
  List.iter
    (fun n ->
      Alcotest.(check (list int))
        (Printf.sprintf "n=%d" n)
        [ max 0 n ]
        (run_bin p ~entry:"f" ~input:[ n ]))
    [ -3; 0; 1; 2; 5 ]

let test_ter_does_not_cross_store () =
  (* A load must not be forwarded past a store to the same base. *)
  let src =
    "int g;\n\
     int f() {\n\
     g = 1;\n\
     int t = g;\n\
     g = 2;\n\
     output(t + g);\n\
     return 0;\n\
     }"
  in
  let p = lower_promoted src in
  Ter.run_program p;
  Verify.check p;
  Alcotest.(check (list int)) "load kept before store" [ 3 ]
    (run_bin p ~entry:"f" ~input:[])

let test_licm_keeps_variant_loads () =
  (* A load whose base is stored inside the loop must not be hoisted. *)
  let src =
    "int a[4];\n\
     int f() {\n\
     int s = 0;\n\
     int i = 0;\n\
     while (i < 4) {\n\
     a[0] = i;\n\
     s = s + a[0];\n\
     i = i + 1;\n\
     }\n\
     output(s);\n\
     return 0;\n\
     }"
  in
  let p = lower_promoted src in
  Licm.run_program p;
  Verify.check p;
  Alcotest.(check (list int)) "variant load stays" [ 6 ]
    (run_bin p ~entry:"f" ~input:[])

let test_cse_respects_input_effects () =
  (* Two input() calls look identical but must both execute. *)
  let src = "int f() { output(input() + input()); return 0; }" in
  let p = lower_promoted src in
  Cse.run_local_program p;
  Cse.run_global_program p;
  Verify.check p;
  Alcotest.(check (list int)) "both inputs read" [ 30 ]
    (run_bin p ~entry:"f" ~input:[ 10; 20 ])

let test_gvn_does_not_merge_impure_calls () =
  let src =
    "int next() { return input(); }\n\
     int f() { output(next() + next()); return 0; }"
  in
  let p = lower_promoted src in
  Ipa_pure_const.run p;
  Cse.run_global_program ~pure_calls:(Ipa_pure_const.pure_predicate p) p;
  Verify.check p;
  Alcotest.(check (list int)) "impure calls kept" [ 7 ]
    (run_bin p ~entry:"f" ~input:[ 3; 4 ])

let test_gvn_merges_pure_calls () =
  let src =
    "int sq(int x) { return x * x; }\n\
     int f() { int a = input(); output(sq(a) + sq(a)); return 0; }"
  in
  let p = lower_promoted src in
  Ipa_pure_const.run p;
  let fn = Hashtbl.find p.Ir.funcs "f" in
  let removed =
    Cse.run_global ~pure_calls:(Ipa_pure_const.pure_predicate p) fn
  in
  Verify.check p;
  Alcotest.(check bool) "one pure call merged" true (removed >= 1);
  Alcotest.(check (list int)) "value" [ 50 ] (run_bin p ~entry:"f" ~input:[ 5 ])

let test_if_conversion_skips_effects () =
  (* Arms with stores must not be speculated. *)
  let src =
    "int g;\n\
     int f() {\n\
     int a = input();\n\
     if (a > 0) {\n\
     g = 1;\n\
     }\n\
     output(g);\n\
     return 0;\n\
     }"
  in
  let p = lower_promoted src in
  let fn = Hashtbl.find p.Ir.funcs "f" in
  ignore (If_conversion.run fn);
  Verify.check p;
  Alcotest.(check (list int)) "store not speculated (a<=0)" [ 0 ]
    (run_bin p ~entry:"f" ~input:[ 0 ]);
  let p2 = lower_promoted src in
  ignore (If_conversion.run (Hashtbl.find p2.Ir.funcs "f"));
  Alcotest.(check (list int)) "store when taken" [ 1 ]
    (run_bin p2 ~entry:"f" ~input:[ 1 ])

let test_slp_respects_dependences () =
  (* A chain a->b->c must not be packed into one vector op. *)
  let src =
    "int f() {\n\
     int x = input();\n\
     int a = x + 1;\n\
     int b = a + 2;\n\
     int c = b + 3;\n\
     output(c);\n\
     return 0;\n\
     }"
  in
  let p = lower_promoted src in
  let fn = Hashtbl.find p.Ir.funcs "f" in
  ignore (Slp.run fn);
  Verify.check p;
  Alcotest.(check (list int)) "chain value preserved" [ 16 ]
    (run_bin p ~entry:"f" ~input:[ 10 ])

let test_dse_keeps_observed_stores () =
  let src =
    "int g;\n\
     int probe() { return g; }\n\
     int f() {\n\
     g = 5;\n\
     output(probe());\n\
     g = 6;\n\
     output(probe());\n\
     return 0;\n\
     }"
  in
  let p = lower_promoted src in
  ignore (Dse.run p);
  Verify.check p;
  Alcotest.(check (list int)) "both stores observable" [ 5; 6 ]
    (run_bin p ~entry:"f" ~input:[])

let test_cleanup_dead_phi_kills_binding () =
  let src =
    "int f(int a) {\n\
     int ghost = 0;\n\
     if (a > 0) {\n\
     ghost = a;\n\
     }\n\
     return a;\n\
     }"
  in
  let p = lower_promoted src in
  Dce.run_program p;
  Cleanup.run_program p;
  Verify.check p;
  let fn = Hashtbl.find p.Ir.funcs "f" in
  let ghost_dead = ref false in
  Ir.iter_instrs fn (fun _ i ->
      match i.Ir.ik with
      | Ir.Dbg ({ name = "ghost"; _ }, None) -> ghost_dead := true
      | _ -> ());
  Alcotest.(check bool) "unused merged variable optimized out" true !ghost_dead

let test_sroa_then_downstream () =
  (* SROA output must survive the rest of the pipeline. *)
  let src =
    "int f() {\n\
     int a = input();\n\
     int t[2];\n\
     t[0] = a * 3;\n\
     t[1] = a * 5;\n\
     output(t[0] + t[1]);\n\
     return 0;\n\
     }"
  in
  let p = lower_promoted src in
  Sroa.run_program p;
  Instcombine.run_program p;
  Dce.run_program p;
  Verify.check p;
  Alcotest.(check (list int)) "scalarized pipeline" [ 16 ]
    (run_bin p ~entry:"f" ~input:[ 2 ])

(* ------------------------------------------------------------------ *)
(* Pipeline golden tests: the pass universes of Tables V / VI          *)

let test_gcc_pipeline_universe () =
  let names l =
    Debugtuner.Toolchain.pass_names
      (Debugtuner.Config.make Debugtuner.Config.Gcc l)
  in
  Alcotest.(check (list string)) "gcc Og pass universe"
    [
      "ipa-pure-const"; "guess-branch-probability"; "inline"; "tree-ccp";
      "tree-forwprop"; "tree-fre"; "dce"; "thread-jumps"; "tree-coalesce-vars";
      "ira-share-spill-slots"; "shrink-wrap"; "reorder-blocks";
    ]
    (names Debugtuner.Config.Og);
  Alcotest.(check int) "gcc O3 universe size" 30
    (List.length (names Debugtuner.Config.O3))

let test_clang_pipeline_universe () =
  let names l =
    Debugtuner.Toolchain.pass_names
      (Debugtuner.Config.make Debugtuner.Config.Clang l)
  in
  Alcotest.(check (list string)) "clang O1 pass universe"
    [
      "FunctionAttrs"; "SROA"; "EarlyCSE"; "SimplifyCFG"; "InstCombine";
      "Inliner"; "LoopRotate"; "LICM"; "LoopStrengthReduce"; "ADCE";
      "Machine code sinking"; "Control Flow Optimizer";
      "Branch Prob BB Placement"; "Machine Scheduler";
    ]
    (names Debugtuner.Config.O1)

let tests =
  [
    Alcotest.test_case "inline skips recursive" `Quick test_inline_skips_recursive;
    Alcotest.test_case "inline caller budget" `Quick test_inline_caller_size_budget;
    Alcotest.test_case "jump threading if-chain" `Quick test_jump_threading_if_chain;
    Alcotest.test_case "rotate nested loops" `Quick test_rotate_nested_loops;
    Alcotest.test_case "unroll 0/1 iterations" `Quick
      test_unroll_zero_and_one_iteration;
    Alcotest.test_case "ter load/store order" `Quick test_ter_does_not_cross_store;
    Alcotest.test_case "licm variant loads" `Quick test_licm_keeps_variant_loads;
    Alcotest.test_case "cse input effects" `Quick test_cse_respects_input_effects;
    Alcotest.test_case "gvn impure calls" `Quick test_gvn_does_not_merge_impure_calls;
    Alcotest.test_case "gvn pure calls" `Quick test_gvn_merges_pure_calls;
    Alcotest.test_case "if-conversion effects" `Quick test_if_conversion_skips_effects;
    Alcotest.test_case "slp dependences" `Quick test_slp_respects_dependences;
    Alcotest.test_case "dse observed stores" `Quick test_dse_keeps_observed_stores;
    Alcotest.test_case "dead phi binding" `Quick test_cleanup_dead_phi_kills_binding;
    Alcotest.test_case "sroa downstream" `Quick test_sroa_then_downstream;
    Alcotest.test_case "gcc pipeline golden" `Quick test_gcc_pipeline_universe;
    Alcotest.test_case "clang pipeline golden" `Quick test_clang_pipeline_universe;
  ]
