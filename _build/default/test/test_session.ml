(** Tests for the scripted debugger session (the gdb batch-mode
    analog). A small fixed program with known line numbers is debugged
    at O0, where behaviour is fully predictable, plus cross-level
    checks that optimization shows through the session exactly as the
    paper describes (lines disappear from the line table, variables go
    optimized-out). *)

module C = Debugtuner.Config
module T = Debugtuner.Toolchain

(* Line numbers:                                    1234567890123 *)
let src =
  String.concat "\n"
    [
      "int helper(int a) {" (* 1 *);
      "  int b = a * 2;" (* 2 *);
      "  return b + 1;" (* 3 *);
      "}" (* 4 *);
      "int main() {" (* 5 *);
      "  int x = input();" (* 6 *);
      "  int y = helper(x);" (* 7 *);
      "  int arr[3];" (* 8 *);
      "  arr[0] = y;" (* 9 *);
      "  arr[1] = y + 1;" (* 10 *);
      "  arr[2] = 9;" (* 11 *);
      "  output(y);" (* 12 *);
      "  return 0;" (* 13 *);
      "}";
    ]

let compile level =
  let ast = Minic.Typecheck.parse_and_check src in
  T.compile ast ~config:(C.make C.Gcc level) ~roots:[ "main" ]

let session level = Session.create (compile level) ~entry:"main"

let one s cmd =
  match Session.exec s cmd with
  | [ line ] -> line
  | lines -> String.concat "\n" lines

let test_break_run_print () =
  let s = session C.O0 in
  let b = one s "break 7" in
  Alcotest.(check bool) "break arms locations" true
    (String.length b > 0 && b.[0] = 'b');
  Alcotest.(check string) "stops at the breakpoint"
    "breakpoint 7, stopped at main, line 7" (one s "run 21");
  Alcotest.(check string) "x has its input value" "x = 21" (one s "print x");
  Alcotest.(check string) "y not yet assigned" "y = 0" (one s "print y");
  Alcotest.(check string) "unknown symbol"
    "no symbol \"nope\" in current context" (one s "print nope")

let test_step_into_and_finish () =
  let s = session C.O0 in
  ignore (Session.exec s "break 7");
  ignore (Session.exec s "run 21");
  Alcotest.(check string) "step enters the callee"
    "stopped at helper, line 1" (one s "step");
  Alcotest.(check string) "another step reaches the body"
    "stopped at helper, line 2" (one s "step");
  Alcotest.(check (list string))
    "backtrace shows the call site"
    [ "#0 helper at line 2"; "#1 main at line 7 (call site)" ]
    (Session.exec s "bt");
  let fin = one s "finish" in
  Alcotest.(check bool) "finish returns to main" true
    (String.length fin >= 4
    && String.sub fin (String.length fin - 4) 4 = "ne 7")

let test_next_steps_over () =
  let s = session C.O0 in
  ignore (Session.exec s "break 7");
  ignore (Session.exec s "run 5");
  (* next must not stop inside helper *)
  Alcotest.(check string) "next skips the call"
    "stopped at main, line 9" (one s "next")

let test_array_and_locals () =
  let s = session C.O0 in
  ignore (Session.exec s "break 12");
  ignore (Session.exec s "run 21");
  Alcotest.(check string) "array printed elementwise" "arr = {43, 44, 9}"
    (one s "print arr");
  let locals = Session.exec s "info locals" in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " listed") true
        (List.mem expected locals))
    [ "arr = {43, 44, 9}"; "x = 21"; "y = 43" ]

let test_continue_to_exit () =
  let s = session C.O0 in
  ignore (Session.exec s "break 7");
  ignore (Session.exec s "run 21");
  Alcotest.(check string) "exit reports the output"
    "[program exited; output: [43]]" (one s "continue");
  Alcotest.(check string) "session ends"
    "the program is not running (use: run [inputs])" (one s "print x")

let test_tbreak_clears () =
  let s = session C.O0 in
  ignore (Session.exec s "tbreak 9");
  ignore (Session.exec s "break 10");
  ignore (Session.exec s "run 1");
  (* first stop: the temporary breakpoint at 9 *)
  let remaining = one s "info breakpoints" in
  Alcotest.(check bool) "line 10 still armed, 9 gone" true
    (String.length remaining >= 7
    && String.sub remaining 0 7 = "line 10"
    && not
         (List.exists
            (fun l -> String.length l >= 6 && String.sub l 0 6 = "line 9")
            (Session.exec s "info breakpoints")))

let test_delete () =
  let s = session C.O0 in
  ignore (Session.exec s "break 9");
  Alcotest.(check string) "delete removes" "deleted breakpoint at line 9"
    (one s "delete 9");
  Alcotest.(check string) "delete is idempotent-ish"
    "no breakpoint at line 9" (one s "delete 9");
  ignore (Session.exec s "run 1");
  Alcotest.(check string) "run goes straight to exit"
    "[program exited; output: [3]]"
    (match Session.exec s "info breakpoints" with
    | [ "no breakpoints" ] -> "[program exited; output: [3]]"
    | other -> String.concat "\n" other)

let test_restart () =
  let s = session C.O0 in
  ignore (Session.exec s "break 12");
  ignore (Session.exec s "run 21");
  Alcotest.(check string) "first run" "y = 43" (one s "print y");
  ignore (Session.exec s "run 1");
  Alcotest.(check string) "restart with new input" "y = 3" (one s "print y")

let test_unknown_command () =
  let s = session C.O0 in
  Alcotest.(check string) "graceful error" "unknown command: teleport"
    (one s "teleport")

let test_optimization_shows () =
  (* At O2 the helper call is inlined and several lines vanish from the
     line table; the session surfaces that as un-breakpointable lines —
     the Figure 1 scenario. *)
  let s0 = session C.O0 and s2 = session C.O2 in
  let breakable s line =
    match Session.exec s (Printf.sprintf "break %d" line) with
    | [ msg ] -> String.length msg >= 10 && String.sub msg 0 10 = "breakpoint"
    | _ -> false
  in
  let lines = [ 2; 6; 7; 9; 10; 11; 12 ] in
  let b0 = List.length (List.filter (breakable s0) lines) in
  let b2 = List.length (List.filter (breakable s2) lines) in
  Alcotest.(check int) "every line breakable at O0" (List.length lines) b0;
  Alcotest.(check bool)
    (Printf.sprintf "optimization loses breakpointable lines (%d < %d)" b2 b0)
    true (b2 < b0)

let test_script_transcript () =
  let bin = compile C.O0 in
  let t =
    Session.script bin ~entry:"main" [ "break 12"; "run 2"; "print y"; "quit" ]
  in
  List.iter
    (fun affix ->
      Alcotest.(check bool) ("transcript has " ^ affix) true
        (let n = String.length affix and m = String.length t in
         let rec go i = i + n <= m && (String.sub t i n = affix || go (i + 1)) in
         go 0))
    [ "(dbg) break 12"; "breakpoint 12, stopped at main, line 12"; "y = 5" ]

let test_runtime_budget () =
  (* An infinite loop must surface as a timeout, not hang the session. *)
  let src = "int main() { int i = 0; while (1 < 2) { i = i + 1; } return i; }" in
  let ast = Minic.Typecheck.parse_and_check src in
  let bin = T.compile ast ~config:(C.make C.Gcc C.O0) ~roots:[ "main" ] in
  let s = Session.create bin ~entry:"main" in
  Alcotest.(check string) "timeout reported" "[program timed out]"
    (match Session.exec s "run" with
    | [ l ] -> l
    | ls -> String.concat "\n" ls)

let test_break_matches_trace_steppable () =
  (* The session's break command and the measurement pipeline's notion
     of steppable lines must agree: break succeeds exactly on the lines
     the line table exposes. *)
  let bin = compile C.O2 in
  let steppable = Dwarfish.steppable_lines bin.Emit.debug in
  for line = 1 to 14 do
    let s = Session.create bin ~entry:"main" in
    let ok =
      match Session.exec s (Printf.sprintf "break %d" line) with
      | [ msg ] ->
          String.length msg >= 10 && String.sub msg 0 10 = "breakpoint"
      | _ -> false
    in
    Alcotest.(check bool)
      (Printf.sprintf "line %d breakable iff steppable" line)
      (List.mem line steppable) ok
  done

let test_watchpoint () =
  let s = session C.O0 in
  ignore (Session.exec s "break 6");
  ignore (Session.exec s "run 21");
  Alcotest.(check string) "unknown symbol rejected"
    "no symbol \"zzz\" in the debug info" (one s "watch zzz");
  let msg = one s "watch y" in
  Alcotest.(check bool) "watch accepted" true
    (String.length msg >= 10 && String.sub msg 0 10 = "watchpoint");
  (* y is assigned at line 7 (the call's result); continuing must stop
     on the write, not at a breakpoint. *)
  let out = Session.exec s "continue" in
  Alcotest.(check bool) "stops on the value change" true
    (match out with
    | first :: rest ->
        first = "watchpoint: y"
        && List.exists (fun l -> l = "  new = 43") rest
    | [] -> false);
  Alcotest.(check string) "y now readable" "y = 43" (one s "print y")

let test_watchpoint_baseline_and_unwatch () =
  let s = session C.O0 in
  ignore (Session.exec s "watch x") (* before run: baseline not visible *);
  ignore (Session.exec s "break 12");
  let out = Session.exec s "run 9" in
  (* x = input() changes 0 -> 9 early, so the watchpoint fires before
     the breakpoint at 12. *)
  Alcotest.(check bool) "watch fires before the breakpoint" true
    (match out with "watchpoint: x" :: _ -> true | _ -> false);
  Alcotest.(check string) "unwatch removes" "deleted watchpoint on x"
    (one s "unwatch x");
  Alcotest.(check string) "info empty" "no watchpoints"
    (one s "info watchpoints");
  Alcotest.(check string) "continue reaches the breakpoint"
    "breakpoint 12, stopped at main, line 12" (one s "continue")

let loop_src =
  String.concat "\n"
    [
      "int main() {" (* 1 *);
      "  int total = 0;" (* 2 *);
      "  int i = 0;" (* 3 *);
      "  while (i < 5) {" (* 4 *);
      "    total = total + i * 10;" (* 5 *);
      "    i = i + 1;" (* 6 *);
      "  }" (* 7 *);
      "  output(total);" (* 8 *);
      "  return total;" (* 9 *);
      "}";
    ]

let test_conditional_breakpoint () =
  let ast = Minic.Typecheck.parse_and_check loop_src in
  let bin = T.compile ast ~config:(C.make C.Gcc C.O0) ~roots:[ "main" ] in
  let s = Session.create bin ~entry:"main" in
  let msg = one s "break 5 if i == 3" in
  Alcotest.(check bool) "condition echoed" true
    (String.length msg > 3
    && String.sub msg (String.length msg - 6) 6 = "i == 3");
  ignore (Session.exec s "run");
  (* Stopped only on the fourth iteration. *)
  Alcotest.(check string) "i is 3 at the stop" "i = 3" (one s "print i");
  Alcotest.(check string) "total has three terms" "total = 30"
    (one s "print total");
  Alcotest.(check string) "continue runs to exit (condition never true again)"
    "[program exited; output: [100]]" (one s "continue")

let test_conditional_breakpoint_ops () =
  let ast = Minic.Typecheck.parse_and_check loop_src in
  let bin = T.compile ast ~config:(C.make C.Gcc C.O0) ~roots:[ "main" ] in
  let s = Session.create bin ~entry:"main" in
  ignore (Session.exec s "break 5 if i >= 4");
  ignore (Session.exec s "run");
  Alcotest.(check string) "last iteration" "i = 4" (one s "print i");
  Alcotest.(check string) "bad op rejected"
    "usage: break <line> [if <var> <op> <int>]" (one s "break 5 if i ~ 2");
  let info = one s "info breakpoints" in
  Alcotest.(check bool) "info shows the condition" true
    (let affix = "if i >= 4" in
     let n = String.length affix and m = String.length info in
     let rec go i = i + n <= m && (String.sub info i n = affix || go (i + 1)) in
     go 0)

let tests =
  [
    Alcotest.test_case "break, run, print" `Quick test_break_run_print;
    Alcotest.test_case "step into + finish" `Quick test_step_into_and_finish;
    Alcotest.test_case "next steps over calls" `Quick test_next_steps_over;
    Alcotest.test_case "arrays and info locals" `Quick test_array_and_locals;
    Alcotest.test_case "continue to exit" `Quick test_continue_to_exit;
    Alcotest.test_case "tbreak clears on hit" `Quick test_tbreak_clears;
    Alcotest.test_case "delete breakpoints" `Quick test_delete;
    Alcotest.test_case "restart" `Quick test_restart;
    Alcotest.test_case "unknown command" `Quick test_unknown_command;
    Alcotest.test_case "optimization loses breakpoints" `Quick
      test_optimization_shows;
    Alcotest.test_case "batch script transcript" `Quick test_script_transcript;
    Alcotest.test_case "timeout on runaway program" `Quick test_runtime_budget;
    Alcotest.test_case "break agrees with steppable lines" `Quick
      test_break_matches_trace_steppable;
    Alcotest.test_case "watchpoints fire on change" `Quick test_watchpoint;
    Alcotest.test_case "watchpoint baseline + unwatch" `Quick
      test_watchpoint_baseline_and_unwatch;
    Alcotest.test_case "conditional breakpoint" `Quick
      test_conditional_breakpoint;
    Alcotest.test_case "conditional breakpoint ops" `Quick
      test_conditional_breakpoint_ops;
  ]
