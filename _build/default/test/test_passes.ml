(** Tests for the optimization passes: per-pass unit behaviour plus the
    repository's strongest property — differential correctness of every
    pass (and pass pipeline) against the unoptimized build. *)

let lower_promoted src =
  let ast = Minic.Typecheck.parse_and_check src in
  let p = Lower.lower_program ast in
  Hashtbl.iter (fun _ fn -> Mem2reg.run fn) p.Ir.funcs;
  Cleanup.run_program p;
  p

let run_bin p ~entry ~input =
  let fns =
    Hashtbl.fold (fun _ fn acc -> fn :: acc) p.Ir.funcs []
    |> List.sort (fun (a : Ir.fn) b -> compare a.Ir.f_line b.Ir.f_line)
  in
  let mfuncs = List.map (fun fn -> Isel.translate_fn fn Mach.opts_o0) fns in
  let bin = Emit.emit { Mach.mfuncs; mglobals = p.Ir.prog_globals } in
  (Vm.run bin ~entry ~input Vm.default_opts).Vm.output

let count_instrs p =
  Hashtbl.fold (fun _ fn acc -> acc + Ir.size fn) p.Ir.funcs 0

(* ------------------------------------------------------------------ *)
(* Individual pass behaviour                                           *)

let test_instcombine_folds () =
  let p = lower_promoted "int f() { int x = 2 + 3; output(x * 1 + 0); return 0; }" in
  let before = count_instrs p in
  Instcombine.run_program p;
  Verify.check p;
  Alcotest.(check bool) "instructions removed" true (count_instrs p < before);
  Alcotest.(check (list int)) "semantics" [ 5 ] (run_bin p ~entry:"f" ~input:[])

let test_instcombine_strength () =
  let p = lower_promoted "int f(int a) { output(a * 8); output(a * 2); return 0; }" in
  Instcombine.run_program p;
  let has_mul = ref false and has_shl = ref false in
  Hashtbl.iter
    (fun _ fn ->
      Ir.iter_instrs fn (fun _ i ->
          match i.Ir.ik with
          | Ir.Bin (Ir.Mul, _, _, _) -> has_mul := true
          | Ir.Bin (Ir.Shl, _, _, _) -> has_shl := true
          | _ -> ()))
    p.Ir.funcs;
  Alcotest.(check bool) "mul by 8 became shift" true !has_shl;
  Alcotest.(check bool) "no multiplies left" false !has_mul

let test_dce_kills_dead_and_bindings () =
  let p =
    lower_promoted
      "int f(int a) {\n  int dead = a * 31;\n  int live = a + 1;\n  return live;\n}"
  in
  Dce.run_program p;
  Verify.check p;
  let fn = Hashtbl.find p.Ir.funcs "f" in
  let dead_binding_lost = ref false in
  let live_binding_kept = ref false in
  Ir.iter_instrs fn (fun _ i ->
      match i.Ir.ik with
      | Ir.Dbg ({ name = "dead"; _ }, None) -> dead_binding_lost := true
      | Ir.Dbg ({ name = "live"; _ }, Some _) -> live_binding_kept := true
      | _ -> ());
  Alcotest.(check bool) "dead variable optimized out" true !dead_binding_lost;
  Alcotest.(check bool) "live variable kept" true !live_binding_kept

let test_cse_local_removes_redundancy () =
  let p =
    lower_promoted
      "int f(int a, int b) { int x = a * b; int y = a * b; return x + y; }"
  in
  let before = count_instrs p in
  ignore (Cse.run_local (Hashtbl.find p.Ir.funcs "f"));
  Verify.check p;
  Alcotest.(check bool) "one multiply removed" true (count_instrs p < before)

let test_cse_rebinds_debug () =
  let p =
    lower_promoted
      "int f(int a, int b) { int x = a * b; int y = a * b; return x + y; }"
  in
  ignore (Cse.run_local (Hashtbl.find p.Ir.funcs "f"));
  (* y's binding must survive, re-pointed at the surviving value. *)
  let fn = Hashtbl.find p.Ir.funcs "f" in
  let y_bound = ref false in
  Ir.iter_instrs fn (fun _ i ->
      match i.Ir.ik with
      | Ir.Dbg ({ name = "y"; _ }, Some _) -> y_bound := true
      | _ -> ());
  Alcotest.(check bool) "y still bound" true !y_bound

let test_gvn_across_blocks () =
  let p =
    lower_promoted
      "int f(int a, int b) {\n\
       int x = a * b;\n\
       int r = 0;\n\
       if (a > 0) {\n\
       r = a * b;\n\
       }\n\
       return x + r;\n\
       }"
  in
  let before = count_instrs p in
  ignore (Cse.run_global (Hashtbl.find p.Ir.funcs "f"));
  Verify.check p;
  Alcotest.(check bool) "dominated redundancy removed" true
    (count_instrs p < before)

let test_licm_hoists () =
  let p =
    lower_promoted
      "int f(int a, int n) {\n\
       int s = 0;\n\
       int i = 0;\n\
       while (i < n) {\n\
       s = s + a * 13;\n\
       i = i + 1;\n\
       }\n\
       return s;\n\
       }"
  in
  let fn = Hashtbl.find p.Ir.funcs "f" in
  let hoisted = Licm.run fn in
  Verify.check p;
  Alcotest.(check bool) "hoisted something" true (hoisted > 0);
  (* Hoisted instruction lost its line. *)
  let lineless_mul = ref false in
  Ir.iter_instrs fn (fun _ i ->
      match (i.Ir.ik, i.Ir.line) with
      | Ir.Bin (Ir.Mul, _, _, _), None -> lineless_mul := true
      | _ -> ());
  Alcotest.(check bool) "hoisted op dropped its line" true !lineless_mul

let test_sink_moves_into_branch () =
  let p =
    lower_promoted
      "int f(int a, int b) {\n\
       int t = a * 77;\n\
       if (b > 0) {\n\
       return t;\n\
       }\n\
       return b;\n\
       }"
  in
  let fn = Hashtbl.find p.Ir.funcs "f" in
  Sink.run fn;
  Verify.check p;
  (* The multiply should no longer sit in the entry block. *)
  let entry = Ir.block fn fn.Ir.entry in
  let mul_in_entry =
    List.exists
      (fun (i : Ir.instr) ->
        match i.Ir.ik with Ir.Bin (Ir.Mul, _, _, _) -> true | _ -> false)
      entry.Ir.instrs
  in
  Alcotest.(check bool) "sunk out of entry" false mul_in_entry

let test_ter_strips_lines () =
  let p =
    lower_promoted
      "int f(int a) {\n\
       int t = a * 3;\n\
       int u = t + 1;\n\
       return u;\n\
       }"
  in
  let fn = Hashtbl.find p.Ir.funcs "f" in
  ignore (Ter.run fn);
  Verify.check p;
  let lineless = ref 0 in
  Ir.iter_instrs fn (fun _ i ->
      match (i.Ir.ik, i.Ir.line) with
      | Ir.Bin _, None -> incr lineless
      | _ -> ());
  Alcotest.(check bool) "forwarded temps lost lines" true (!lineless >= 1)

let test_inline_called_once_deletes () =
  let src =
    "int helper(int x) { return x * 2 + 1; }\n\
     int main() { output(helper(input())); return 0; }"
  in
  let p = lower_promoted src in
  let n =
    Inline.run p
      ~policy:{ Inline.policy_off with called_once = true }
      ~roots:[ "main" ]
  in
  Verify.check p;
  Alcotest.(check int) "one inline" 1 n;
  Alcotest.(check bool) "helper deleted" false (Hashtbl.mem p.Ir.funcs "helper");
  Alcotest.(check (list int)) "semantics" [ 11 ]
    (run_bin p ~entry:"main" ~input:[ 5 ])

let test_inline_announces_params () =
  let src =
    "int helper(int x) { return x * 2; }\n\
     int main() { output(helper(4)); output(helper(5)); return 0; }"
  in
  let p = lower_promoted src in
  ignore
    (Inline.run p
       ~policy:{ Inline.policy_off with small_threshold = 10 }
       ~roots:[ "main" ]);
  Verify.check p;
  let main = Hashtbl.find p.Ir.funcs "main" in
  let param_bindings = ref 0 in
  Ir.iter_instrs main (fun _ i ->
      match i.Ir.ik with
      | Ir.Dbg ({ origin = "helper"; name = "x" }, Some _) ->
          incr param_bindings
      | _ -> ());
  Alcotest.(check bool) "inlined params announced per site" true
    (!param_bindings >= 2);
  Alcotest.(check (list int)) "semantics" [ 8; 10 ]
    (run_bin p ~entry:"main" ~input:[])

let test_inline_respects_roots () =
  let src =
    "int harness() { return 7; }\nint main() { output(harness()); return 0; }"
  in
  let p = lower_promoted src in
  ignore
    (Inline.run p
       ~policy:{ Inline.policy_off with called_once = true }
       ~roots:[ "main"; "harness" ]);
  Alcotest.(check bool) "root kept" true (Hashtbl.mem p.Ir.funcs "harness")

let test_jump_threading_constant_edge () =
  let src =
    "int f(int a) {\n\
     int x = 0;\n\
     if (a > 0) {\n\
     x = 1;\n\
     }\n\
     if (x == 1) {\n\
     return 10;\n\
     }\n\
     return 20;\n\
     }"
  in
  let p = lower_promoted src in
  let fn = Hashtbl.find p.Ir.funcs "f" in
  let threaded = Jump_threading.run fn in
  Verify.check p;
  Alcotest.(check bool) "threaded at least one edge" true (threaded > 0);
  Alcotest.(check (list int)) "pos" [] (run_bin p ~entry:"f" ~input:[] |> fun _ -> []);
  let run a =
    let p2 = lower_promoted src in
    ignore (Jump_threading.run (Hashtbl.find p2.Ir.funcs "f"));
    run_bin p2 ~entry:"f" ~input:[ a ]
  in
  ignore (run 1)

let test_loop_rotate_saves_branch () =
  let src =
    "int f() {\n\
     int n = input();\n\
     int s = 0;\n\
     int i = 0;\n\
     while (i < n) {\n\
     s = s + i;\n\
     i = i + 1;\n\
     }\n\
     output(s);\n\
     return s;\n\
     }"
  in
  let p = lower_promoted src in
  let fn = Hashtbl.find p.Ir.funcs "f" in
  let rotated = Loop_rotate.run fn in
  Verify.check p;
  Alcotest.(check int) "rotated" 1 rotated;
  List.iter
    (fun n ->
      let expected = n * (n - 1) / 2 in
      Alcotest.(check (list int))
        (Printf.sprintf "semantics n=%d" n)
        [ expected ]
        (run_bin p ~entry:"f" ~input:[ n ]))
    [ 0; 1; 5 ]

let test_loop_rotate_skips_early_return () =
  (* The early-return shape that once miscompiled: rotation must either
     bail or stay correct. *)
  let src =
    "int a[8];\n\
     int f(int sym) {\n\
     int r = 0;\n\
     while (r < 8) {\n\
     if (a[r] == sym) {\n\
     return r * 10;\n\
     }\n\
     r = r + 1;\n\
     }\n\
     return -1;\n\
     }\n\
     int main() {\n\
     a[3] = 42;\n\
     output(f(42));\n\
     output(f(7));\n\
     return 0;\n\
     }"
  in
  let p = lower_promoted src in
  Hashtbl.iter (fun _ fn -> ignore (Loop_rotate.run fn)) p.Ir.funcs;
  Verify.check p;
  Alcotest.(check (list int)) "early return correct" [ 30; -1 ]
    (run_bin p ~entry:"main" ~input:[])

let test_unroll_single_block () =
  let src =
    "int f() {\n\
     int n = input();\n\
     int s = 0;\n\
     int i = 0;\n\
     while (i < n) {\n\
     s = s + i * i;\n\
     i = i + 1;\n\
     }\n\
     output(s);\n\
     output(i);\n\
     return s;\n\
     }"
  in
  let p = lower_promoted src in
  Hashtbl.iter
    (fun _ fn ->
      ignore (Loop_rotate.run fn);
      Cleanup.run fn;
      ignore (Loop_unroll.run fn ~factor:2);
      Cleanup.run fn)
    p.Ir.funcs;
  Verify.check p;
  List.iter
    (fun n ->
      let expected =
        let s = ref 0 in
        for i = 0 to n - 1 do
          s := !s + (i * i)
        done;
        [ !s; n ]
      in
      Alcotest.(check (list int))
        (Printf.sprintf "unrolled n=%d" n)
        expected
        (run_bin p ~entry:"f" ~input:[ n ] |> fun o -> List.filteri (fun i _ -> i < 2) o))
    [ 0; 1; 2; 3; 7; 8 ]

let test_lsr_replaces_mul () =
  let src =
    "int f(int n) {\n\
     int s = 0;\n\
     int i = 0;\n\
     while (i < n) {\n\
     s = s + i * 12;\n\
     i = i + 1;\n\
     }\n\
     return s;\n\
     }"
  in
  let p = lower_promoted src in
  let fn = Hashtbl.find p.Ir.funcs "f" in
  ignore (Loop_rotate.run fn);
  Cleanup.run fn;
  let reduced = Lsr.run fn in
  Verify.check p;
  Alcotest.(check bool) "reduced a multiply" true (reduced > 0)

let test_sroa_scalarizes () =
  let src =
    "int f(int a) {\n\
     int t[3];\n\
     t[0] = a;\n\
     t[1] = a * 2;\n\
     t[2] = t[0] + t[1];\n\
     return t[2];\n\
     }"
  in
  let p = lower_promoted src in
  let fn = Hashtbl.find p.Ir.funcs "f" in
  let split = Sroa.run fn in
  Verify.check p;
  Alcotest.(check int) "one array split" 1 split;
  Alcotest.(check int) "no slots left" 0 (List.length fn.Ir.f_slots)

let test_sroa_skips_dynamic_index () =
  let src =
    "int f(int a) {\n\
     int t[3];\n\
     t[a] = 1;\n\
     return t[0];\n\
     }"
  in
  let p = lower_promoted src in
  let fn = Hashtbl.find p.Ir.funcs "f" in
  Alcotest.(check int) "not split" 0 (Sroa.run fn);
  Alcotest.(check int) "array slot kept" 1 (List.length fn.Ir.f_slots)

let test_if_conversion_makes_select () =
  let src =
    "int f(int a, int b) {\n\
     int r;\n\
     if (a > b) {\n\
     r = a * 2 + 1;\n\
     } else {\n\
     r = b * 3 - 1;\n\
     }\n\
     return r;\n\
     }"
  in
  let p = lower_promoted src in
  let fn = Hashtbl.find p.Ir.funcs "f" in
  let converted = If_conversion.run fn in
  Verify.check p;
  Alcotest.(check bool) "converted" true (converted > 0);
  let has_select = ref false in
  Ir.iter_instrs fn (fun _ i ->
      match i.Ir.ik with Ir.Select _ -> has_select := true | _ -> ());
  Alcotest.(check bool) "select present" true !has_select

let test_slp_packs () =
  let src =
    "int f(int a, int b, int c, int d) {\n\
     int w = a + 1;\n\
     int x = b + 2;\n\
     int y = c + 3;\n\
     int z = d + 4;\n\
     return w + x + y + z;\n\
     }"
  in
  let p = lower_promoted src in
  let fn = Hashtbl.find p.Ir.funcs "f" in
  let packed = Slp.run fn in
  Verify.check p;
  Alcotest.(check bool) "packed a group" true (packed > 0);
  let has_vec = ref false in
  Ir.iter_instrs fn (fun _ i ->
      match i.Ir.ik with Ir.Vec _ -> has_vec := true | _ -> ());
  Alcotest.(check bool) "vec instruction" true !has_vec

let test_dse_write_only_global () =
  let src =
    "int sink_g;\n\
     int f(int a) {\n\
     sink_g = a;\n\
     sink_g = a + 1;\n\
     return a;\n\
     }"
  in
  let p = lower_promoted src in
  let removed = Dse.run p in
  Verify.check p;
  Alcotest.(check bool) "write-only stores removed" true (removed >= 2)

let test_ipa_pure_const () =
  let src =
    "int pure_add(int a, int b) { return a + b; }\n\
     int impure(int a) { output(a); return a; }\n\
     int chained(int a) { return pure_add(a, 1); }"
  in
  let p = lower_promoted src in
  Ipa_pure_const.run p;
  Alcotest.(check bool) "pure_add pure" true
    (Hashtbl.find p.Ir.funcs "pure_add").Ir.is_pure;
  Alcotest.(check bool) "impure not" false
    (Hashtbl.find p.Ir.funcs "impure").Ir.is_pure;
  Alcotest.(check bool) "purity propagates" true
    (Hashtbl.find p.Ir.funcs "chained").Ir.is_pure

let test_branch_prob_loops_hot () =
  let p = lower_promoted
      "int f(int n) { int i = 0; while (i < n) { i = i + 1; } return i; }"
  in
  let fn = Hashtbl.find p.Ir.funcs "f" in
  Branch_prob.run fn;
  let max_freq = ref 0.0 in
  Ir.iter_blocks fn (fun b -> if b.Ir.freq > !max_freq then max_freq := b.Ir.freq);
  Alcotest.(check bool) "loop blocks hot" true (!max_freq >= 8.0)

let test_simplify_cfg_hoists_common () =
  let src =
    "int f(int a, int b) {\n\
     int r;\n\
     if (a > 0) {\n\
     r = b * 31 + 1;\n\
     } else {\n\
     r = b * 31 - 1;\n\
     }\n\
     return r;\n\
     }"
  in
  let p = lower_promoted src in
  let fn = Hashtbl.find p.Ir.funcs "f" in
  let changed = Simplify_cfg.run fn in
  Verify.check p;
  Alcotest.(check bool) "hoisted or speculated" true (changed > 0)

(* ------------------------------------------------------------------ *)
(* Differential property: each pass alone preserves semantics on
   random synthetic programs.                                          *)

let passes_under_test : (string * (Ir.program -> unit)) list =
  [
    ("instcombine", (fun p -> Instcombine.run_program p));
    ("dce", fun p -> Dce.run_program p);
    ("cse-local", (fun p -> Cse.run_local_program p));
    ("cse-global", fun p -> Cse.run_global_program p);
    ("dse", fun p -> ignore (Dse.run p));
    ("sink", (fun p -> Sink.run_program p));
    ("ter", (fun p -> Ter.run_program p));
    ("licm", (fun p -> Licm.run_program p));
    ("rotate", (fun p -> Loop_rotate.run_program p));
    ( "unroll",
      fun p -> Hashtbl.iter (fun _ fn -> ignore (Loop_unroll.run fn ~factor:2)) p.Ir.funcs );
    ("lsr", fun p -> Hashtbl.iter (fun _ fn -> ignore (Lsr.run fn)) p.Ir.funcs);
    ("sroa", (fun p -> Sroa.run_program p));
    ("jump-threading", (fun p -> Jump_threading.run_program p));
    ("if-conversion", fun p -> If_conversion.run_program p);
    ("slp", (fun p -> Slp.run_program p));
    ("simplify-cfg", (fun p -> Simplify_cfg.run_program p));
    ( "inline",
      fun p ->
        ignore
          (Inline.run p
             ~policy:{ Inline.policy_off with small_threshold = 16; called_once = true }
             ~roots:[ "main" ]) );
  ]

let qcheck_pass_differential (name, pass) =
  QCheck.Test.make
    ~name:(Printf.sprintf "pass %s preserves semantics" name)
    ~count:20
    QCheck.(int_range 1 50_000)
    (fun seed ->
      let src = Synth.generate ~seed in
      let base =
        run_bin (lower_promoted src) ~entry:"main" ~input:[]
      in
      let p = lower_promoted src in
      pass p;
      Cleanup.run_program p;
      Verify.check p;
      run_bin p ~entry:"main" ~input:[] = base)

let tests =
  [
    Alcotest.test_case "instcombine folds" `Quick test_instcombine_folds;
    Alcotest.test_case "instcombine strength reduction" `Quick
      test_instcombine_strength;
    Alcotest.test_case "dce kills dead + bindings" `Quick
      test_dce_kills_dead_and_bindings;
    Alcotest.test_case "cse local" `Quick test_cse_local_removes_redundancy;
    Alcotest.test_case "cse rebinds debug" `Quick test_cse_rebinds_debug;
    Alcotest.test_case "gvn across blocks" `Quick test_gvn_across_blocks;
    Alcotest.test_case "licm hoists + strips lines" `Quick test_licm_hoists;
    Alcotest.test_case "sink into branch" `Quick test_sink_moves_into_branch;
    Alcotest.test_case "ter strips lines" `Quick test_ter_strips_lines;
    Alcotest.test_case "inline called-once deletes" `Quick
      test_inline_called_once_deletes;
    Alcotest.test_case "inline announces params" `Quick
      test_inline_announces_params;
    Alcotest.test_case "inline respects roots" `Quick test_inline_respects_roots;
    Alcotest.test_case "jump threading constant edge" `Quick
      test_jump_threading_constant_edge;
    Alcotest.test_case "loop rotate" `Quick test_loop_rotate_saves_branch;
    Alcotest.test_case "loop rotate early-return" `Quick
      test_loop_rotate_skips_early_return;
    Alcotest.test_case "unroll single-block loops" `Quick test_unroll_single_block;
    Alcotest.test_case "lsr replaces mul" `Quick test_lsr_replaces_mul;
    Alcotest.test_case "sroa scalarizes" `Quick test_sroa_scalarizes;
    Alcotest.test_case "sroa skips dynamic index" `Quick
      test_sroa_skips_dynamic_index;
    Alcotest.test_case "if-conversion select" `Quick
      test_if_conversion_makes_select;
    Alcotest.test_case "slp packs" `Quick test_slp_packs;
    Alcotest.test_case "dse write-only global" `Quick test_dse_write_only_global;
    Alcotest.test_case "ipa-pure-const" `Quick test_ipa_pure_const;
    Alcotest.test_case "branch prob loops hot" `Quick test_branch_prob_loops_hot;
    Alcotest.test_case "simplify-cfg hoists" `Quick test_simplify_cfg_hoists_common;
  ]
  @ List.map
      (fun p -> QCheck_alcotest.to_alcotest (qcheck_pass_differential p))
      passes_under_test
