(** Tests for the dynamic value-soundness oracle: at O0 the debugger's
    view of every variable must equal the reference interpreter's, for
    every suite program, every SPEC analog and random synthetic
    programs. At optimized levels small first-hit skews from code
    motion are expected (the companion-work "wrong values"
    phenomenon) but must stay rare. *)

module C = Debugtuner.Config
module VO = Debugtuner.Value_oracle

let check_program (p : Suite_types.sprogram) cfg =
  let ast = Suite_types.ast p in
  List.map
    (fun h ->
      let input =
        match h.Suite_types.h_seeds with s :: _ -> s | [] -> []
      in
      ( h.Suite_types.h_entry,
        VO.check ast ~config:cfg ~roots:(Suite_types.roots p)
          ~entry:h.Suite_types.h_entry ~input ))
    p.Suite_types.p_harnesses

let test_o0_suite_clean () =
  List.iter
    (fun (p : Suite_types.sprogram) ->
      List.iter
        (fun (entry, (r : VO.report)) ->
          Alcotest.(check string)
            (Printf.sprintf "%s/%s O0 truth" p.Suite_types.p_name entry)
            ""
            (String.concat "; "
               (List.map VO.mismatch_to_string r.VO.rp_mismatches));
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s compares something" p.Suite_types.p_name
               entry)
            true
            (r.VO.rp_values > 0))
        (check_program p (C.make C.Gcc C.O0)))
    Programs.all

let test_o0_spec_clean () =
  List.iter
    (fun (p : Suite_types.sprogram) ->
      List.iter
        (fun (entry, (r : VO.report)) ->
          Alcotest.(check int)
            (Printf.sprintf "%s/%s O0 truth" p.Suite_types.p_name entry)
            0
            (List.length r.VO.rp_mismatches))
        (check_program p (C.make C.Gcc C.O0)))
    Spec.all

let qcheck_o0_random_clean =
  QCheck.Test.make ~name:"random programs are truthful at O0" ~count:20
    QCheck.(int_range 1 60_000)
    (fun seed ->
      let src = Synth.generate ~seed in
      let ast = Minic.Typecheck.parse_and_check src in
      let r =
        VO.check ast
          ~config:(C.make C.Gcc C.O0)
          ~roots:[ "main" ] ~entry:"main" ~input:[]
      in
      r.VO.rp_mismatches = [])

let test_og_skew_is_rare () =
  (* Optimization introduces first-hit skew, but it must stay a small
     fraction of the compared values (the paper's companion work reports
     the same order of magnitude for production compilers). *)
  List.iter
    (fun (p : Suite_types.sprogram) ->
      List.iter
        (fun (entry, (r : VO.report)) ->
          if r.VO.rp_values >= 20 then
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s Og skew rare (%d/%d)"
                 p.Suite_types.p_name entry
                 (List.length r.VO.rp_mismatches)
                 r.VO.rp_values)
              true
              (10 * List.length r.VO.rp_mismatches <= r.VO.rp_values))
        (check_program p (C.make C.Gcc C.Og)))
    Programs.all

let test_report_format () =
  let p = Programs.find "zlib" in
  let ast = Suite_types.ast p in
  let r =
    VO.check ast
      ~config:(C.make C.Gcc C.O0)
      ~roots:(Suite_types.roots p) ~entry:"fuzz_deflate"
      ~input:[ 1; 2; 3 ]
  in
  let s = VO.report_to_string r in
  Alcotest.(check bool) "mentions counts" true
    (String.length s > 20 && String.sub s 0 12 = "value oracle");
  Alcotest.(check string) "oval rendering" "{1, 2}"
    (VO.oval_to_string (VO.Varr [ 1; 2 ]));
  Alcotest.(check string) "int rendering" "-7" (VO.oval_to_string (VO.Vint (-7)))

let tests =
  [
    Alcotest.test_case "O0 truth on the test suite" `Quick test_o0_suite_clean;
    Alcotest.test_case "O0 truth on the SPEC analogs" `Quick
      test_o0_spec_clean;
    QCheck_alcotest.to_alcotest qcheck_o0_random_clean;
    Alcotest.test_case "Og skew is rare" `Quick test_og_skew_is_rare;
    Alcotest.test_case "report format" `Quick test_report_format;
  ]
