test/test_backend.ml: Alcotest Array Cleanup Debugtuner Dwarfish Emit Hashtbl Ir Isel List Lower Mach Mach_passes Mem2reg Minic Printf Programs Suite_types Vm
