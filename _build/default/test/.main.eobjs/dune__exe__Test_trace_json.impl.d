test/test_trace_json.ml: Alcotest Debugger Debugtuner Hashtbl List Minic Programs QCheck QCheck_alcotest Suite_types Synth Trace_json
