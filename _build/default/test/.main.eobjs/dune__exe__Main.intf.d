test/main.mli:
