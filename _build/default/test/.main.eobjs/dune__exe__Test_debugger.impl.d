test/test_debugger.ml: Alcotest Debugger Debugtuner Ir Lazy List Metrics Minic
