test/test_cost_model.ml: Alcotest Array Emit Hashtbl Ir List Mach Vm
