test/test_session.ml: Alcotest Debugtuner Dwarfish Emit List Minic Printf Session String
