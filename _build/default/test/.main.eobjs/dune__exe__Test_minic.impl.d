test/test_minic.ml: Alcotest Ast Defranges Lexer List Minic Parser Pretty QCheck QCheck_alcotest Synth Typecheck
