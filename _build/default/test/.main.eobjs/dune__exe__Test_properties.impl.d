test/test_properties.ml: Array Cleanup Debugtuner Dom Dwarfish Emit Hashtbl Int Ir List Liveness Loops Lower Mem2reg Minic QCheck QCheck_alcotest Set Synth Verify
