test/test_extensions.ml: Alcotest Debugger Debugtuner Emit Float Lazy List Metrics Printf Programs Spec Suite_types Util
