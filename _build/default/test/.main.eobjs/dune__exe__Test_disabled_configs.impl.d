test/test_disabled_configs.ml: Alcotest Debugtuner List Printf Programs Spec Suite_types Vm
