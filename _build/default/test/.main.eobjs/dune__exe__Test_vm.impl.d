test/test_vm.ml: Alcotest Array Debugtuner Emit Hashtbl List Printf QCheck QCheck_alcotest Spec Suite_types Synth Vm
