test/test_toolchain.ml: Alcotest Debugtuner Emit Gen Lazy List Metrics Printf Programs QCheck QCheck_alcotest Spec String Suite_types
