test/test_fuzz.ml: Alcotest Cmin Debugger Debugtuner Fuzzer Hashtbl Lazy List Trace_prune Util
