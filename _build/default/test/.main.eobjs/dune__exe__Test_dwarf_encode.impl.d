test/test_dwarf_encode.ml: Alcotest Buffer Char Debugtuner Dwarf_encode Dwarfish Emit List Minic Printf Programs QCheck QCheck_alcotest String Suite_types Synth
