test/test_value_oracle.ml: Alcotest Debugtuner List Minic Printf Programs QCheck QCheck_alcotest Spec String Suite_types Synth
