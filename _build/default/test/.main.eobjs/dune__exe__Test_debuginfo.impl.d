test/test_debuginfo.ml: Alcotest Array Debugtuner Dwarfish Emit Ir List Minic Printf Programs QCheck QCheck_alcotest Suite_types Synth
