test/test_debug_verify.ml: Alcotest Array Debug_verify Debugtuner Dwarfdump Dwarfish Emit Ir List Mach Minic Objdump Printf Programs QCheck QCheck_alcotest String Suite_types Synth
