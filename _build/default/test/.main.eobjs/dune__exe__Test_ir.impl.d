test/test_ir.ml: Alcotest Dom Emit Hashtbl Ir Isel List Liveness Loops Lower Mach Mem2reg Minic Printf QCheck QCheck_alcotest Synth Verify Vm
