test/test_suite_programs.ml: Alcotest Debugtuner List Printf Programs Selfcomp Spec Suite_types Synth Vm
