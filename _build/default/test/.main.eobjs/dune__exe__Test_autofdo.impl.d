test/test_autofdo.ml: Alcotest Debugtuner Dwarfish Emit Hashtbl Lazy List Printf Spec String Suite_types Vm
