test/test_interp.ml: Alcotest Debugtuner List Minic Printf Programs QCheck QCheck_alcotest Suite_types Synth Vm
