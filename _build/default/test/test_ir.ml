(** Tests for the IR substrate: lowering, evaluation semantics,
    dominators, liveness, loops, mem2reg and the verifier. *)

let lower src =
  let ast = Minic.Typecheck.parse_and_check src in
  Lower.lower_program ast

let lower_fn src name =
  let p = lower src in
  (p, Hashtbl.find p.Ir.funcs name)

(* ------------------------------------------------------------------ *)
(* Operator semantics                                                  *)

let test_eval_binop_basics () =
  Alcotest.(check int) "add" 7 (Ir.eval_binop Ir.Add 3 4);
  Alcotest.(check int) "div by zero" 0 (Ir.eval_binop Ir.Div 5 0);
  Alcotest.(check int) "rem by zero" 0 (Ir.eval_binop Ir.Rem 5 0);
  Alcotest.(check int) "div trunc" (-2) (Ir.eval_binop Ir.Div (-5) 2);
  Alcotest.(check int) "shl 3" 8 (Ir.eval_binop Ir.Shl 1 3);
  Alcotest.(check int) "shr neg" (-1) (Ir.eval_binop Ir.Shr (-2) 1);
  Alcotest.(check int) "shl big amount" 0 (Ir.eval_binop Ir.Shl 1 63);
  Alcotest.(check int) "cmp true" 1 (Ir.eval_binop Ir.Cle 2 2);
  Alcotest.(check int) "cmp false" 0 (Ir.eval_binop Ir.Cgt 2 2)

let test_eval_unop () =
  Alcotest.(check int) "neg" (-3) (Ir.eval_unop Ir.Neg 3);
  Alcotest.(check int) "lnot 0" 1 (Ir.eval_unop Ir.Lnot 0);
  Alcotest.(check int) "lnot 5" 0 (Ir.eval_unop Ir.Lnot 5);
  Alcotest.(check int) "bnot" (-1) (Ir.eval_unop Ir.Bnot 0)

let qcheck_shift_total =
  QCheck.Test.make ~name:"shifts are total and sign-correct" ~count:500
    QCheck.(pair int small_int)
    (fun (a, b) ->
      let l = Ir.eval_binop Ir.Shl a b in
      let r = Ir.eval_binop Ir.Shr a b in
      ignore l;
      (* arithmetic shr keeps the sign for small shifts *)
      if a < 0 then r <= 0 else r >= 0)

(* ------------------------------------------------------------------ *)
(* Lowering structure                                                  *)

let loop_src =
  "int f(int n) {\n\
  \  int s = 0;\n\
  \  int i = 0;\n\
  \  while (i < n) {\n\
  \    s = s + i;\n\
  \    i = i + 1;\n\
  \  }\n\
  \  return s;\n\
   }"

let test_lowering_shape () =
  let p, fn = lower_fn loop_src "f" in
  Verify.check p;
  (* O0 shape: every named variable has a slot. *)
  let named =
    List.filter (fun (s : Ir.slot) -> s.Ir.s_var <> None) fn.Ir.f_slots
  in
  Alcotest.(check int) "n, s, i slots" 3 (List.length named);
  (* A while loop produces header/body/exit blocks. *)
  Alcotest.(check bool) "several blocks" true (List.length fn.Ir.layout >= 4)

let test_lowering_lines () =
  let _, fn = lower_fn loop_src "f" in
  let lines = ref [] in
  Ir.iter_instrs fn (fun _ i ->
      match i.Ir.line with Some l -> lines := l :: !lines | None -> ());
  let uniq = List.sort_uniq compare !lines in
  (* Lines 1..6 and 8 all carry instructions at O0. *)
  List.iter
    (fun l ->
      Alcotest.(check bool) (Printf.sprintf "line %d present" l) true
        (List.mem l uniq))
    [ 2; 3; 5; 6; 8 ]

let test_lowering_short_circuit () =
  let p, _ = lower_fn "int f(int a, int b) { return a && b; }" "f" in
  Verify.check p;
  (* Short-circuit goes through an anonymous slot. *)
  let fn = Hashtbl.find p.Ir.funcs "f" in
  let anon =
    List.filter (fun (s : Ir.slot) -> s.Ir.s_var = None) fn.Ir.f_slots
  in
  Alcotest.(check int) "one anonymous slot" 1 (List.length anon)

let test_lowering_break_continue () =
  let p, fn =
    lower_fn
      "int f(int n) {\n\
      \  int s = 0;\n\
      \  for (int i = 0; i < n; i = i + 1) {\n\
      \    if (i == 3) { continue; }\n\
      \    if (i == 7) { break; }\n\
      \    s = s + i;\n\
      \  }\n\
      \  return s;\n\
       }"
      "f"
  in
  Verify.check p;
  Alcotest.(check bool) "many blocks" true (List.length fn.Ir.layout >= 6)

(* ------------------------------------------------------------------ *)
(* Dominators, loops, liveness                                         *)

let test_dominators () =
  let _, fn = lower_fn loop_src "f" in
  Ir.prune_unreachable fn;
  let dom = Dom.compute fn in
  (* Entry dominates everything. *)
  List.iter
    (fun l ->
      Alcotest.(check bool)
        (Printf.sprintf "entry dom %d" l)
        true
        (Dom.dominates dom fn.Ir.entry l))
    fn.Ir.layout;
  (* Everything dominates itself. *)
  List.iter
    (fun l -> Alcotest.(check bool) "self" true (Dom.dominates dom l l))
    fn.Ir.layout

let test_loops_found () =
  let _, fn = lower_fn loop_src "f" in
  Ir.prune_unreachable fn;
  let dom = Dom.compute fn in
  let loops = Loops.find fn dom in
  Alcotest.(check int) "one loop" 1 (List.length loops.Loops.loops);
  let lp = List.hd loops.Loops.loops in
  Alcotest.(check int) "depth 1" 1 lp.Loops.depth;
  Alcotest.(check bool) "header in body" true
    (Loops.Label_set.mem lp.Loops.header lp.Loops.body)

let test_nested_loop_depth () =
  let _, fn =
    lower_fn
      "int f(int n) {\n\
      \  int s = 0;\n\
      \  int i = 0;\n\
      \  while (i < n) {\n\
      \    int j = 0;\n\
      \    while (j < n) {\n\
      \      s = s + 1;\n\
      \      j = j + 1;\n\
      \    }\n\
      \    i = i + 1;\n\
      \  }\n\
      \  return s;\n\
       }"
      "f"
  in
  Ir.prune_unreachable fn;
  let dom = Dom.compute fn in
  let loops = Loops.find fn dom in
  Alcotest.(check int) "two loops" 2 (List.length loops.Loops.loops);
  let depths = List.map (fun l -> l.Loops.depth) loops.Loops.loops in
  Alcotest.(check (list int)) "depths 1 and 2" [ 1; 2 ]
    (List.sort compare depths)

let test_preheader_idempotent () =
  let _, fn = lower_fn loop_src "f" in
  Ir.prune_unreachable fn;
  let dom = Dom.compute fn in
  let loops = Loops.find fn dom in
  let lp = List.hd loops.Loops.loops in
  let ph1 = Loops.preheader fn lp in
  let ph2 = Loops.preheader fn lp in
  Alcotest.(check int) "stable preheader" ph1 ph2

let test_liveness_param_live () =
  let _, fn = lower_fn loop_src "f" in
  Mem2reg.run fn;
  let live = Liveness.compute fn in
  (* The parameter n feeds the loop condition, so it is live into the
     entry block's successors region; at minimum live-in of entry holds
     whatever entry reads. *)
  let entry_in = Liveness.live_in live fn.Ir.entry in
  let param_regs = List.map fst fn.Ir.f_params in
  Alcotest.(check bool) "a param is live somewhere" true
    (List.exists
       (fun l ->
         List.exists
           (fun r -> Liveness.Reg_set.mem r (Liveness.live_in live l))
           param_regs)
       fn.Ir.layout
    || List.exists (fun r -> Liveness.Reg_set.mem r entry_in) param_regs)

(* ------------------------------------------------------------------ *)
(* Mem2reg                                                             *)

let test_mem2reg_promotes_scalars () =
  let p, fn = lower_fn loop_src "f" in
  Mem2reg.run fn;
  Verify.check p;
  Alcotest.(check int) "all scalar slots promoted" 0 (List.length fn.Ir.f_slots);
  (* The loop header needs phis. *)
  let has_phi = ref false in
  Ir.iter_blocks fn (fun b -> if b.Ir.phis <> [] then has_phi := true);
  Alcotest.(check bool) "phis inserted" true !has_phi

let test_mem2reg_keeps_arrays () =
  let p, fn =
    lower_fn "int f() { int a[4]; a[0] = 1; return a[0]; }" "f"
  in
  Mem2reg.run fn;
  Verify.check p;
  Alcotest.(check int) "array slot stays" 1 (List.length fn.Ir.f_slots)

let test_mem2reg_inserts_dbg () =
  let _, fn = lower_fn loop_src "f" in
  Mem2reg.run fn;
  let dbg_vars = ref [] in
  Ir.iter_instrs fn (fun _ i ->
      match i.Ir.ik with
      | Ir.Dbg (v, _) -> dbg_vars := v.Ir.name :: !dbg_vars
      | _ -> ());
  List.iter
    (fun v ->
      Alcotest.(check bool) (v ^ " announced") true (List.mem v !dbg_vars))
    [ "n"; "s"; "i" ]

(* Semantics preservation through mem2reg, on random synthetic
   programs: the strongest single property of the whole substrate. *)
let qcheck_mem2reg_semantics =
  QCheck.Test.make ~name:"mem2reg preserves program output" ~count:25
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let src = Synth.generate ~seed in
      let ast = Minic.Typecheck.parse_and_check src in
      let run p =
        let fns =
          Hashtbl.fold (fun _ fn acc -> fn :: acc) p.Ir.funcs []
          |> List.sort (fun (a : Ir.fn) b -> compare a.Ir.f_line b.Ir.f_line)
        in
        let mfuncs = List.map (fun fn -> Isel.translate_fn fn Mach.opts_o0) fns in
        let bin = Emit.emit { Mach.mfuncs; mglobals = p.Ir.prog_globals } in
        (Vm.run bin ~entry:"main" ~input:[] Vm.default_opts).Vm.output
      in
      let base = run (Lower.lower_program ast) in
      let promoted =
        let p = Lower.lower_program ast in
        Hashtbl.iter (fun _ fn -> Mem2reg.run fn) p.Ir.funcs;
        Verify.check p;
        run p
      in
      base = promoted)

(* ------------------------------------------------------------------ *)
(* Verifier                                                            *)

let test_verifier_catches_breakage () =
  let p, fn = lower_fn loop_src "f" in
  Verify.check p;
  (* Break it: point a terminator at a missing block. *)
  (Ir.block fn fn.Ir.entry).Ir.term <- Ir.Br 9999;
  match Verify.check p with
  | exception Verify.Invalid _ -> ()
  | () -> Alcotest.fail "verifier should reject missing target"

let test_verifier_catches_double_def () =
  let p, fn = lower_fn loop_src "f" in
  let b = Ir.block fn fn.Ir.entry in
  b.Ir.instrs <-
    b.Ir.instrs
    @ [
        { Ir.ik = Ir.Mov (1, Ir.Imm 0); line = None };
        { Ir.ik = Ir.Mov (1, Ir.Imm 1); line = None };
      ];
  match Verify.check p with
  | exception Verify.Invalid _ -> ()
  | () -> Alcotest.fail "verifier should reject double definition"

let tests =
  [
    Alcotest.test_case "eval binop" `Quick test_eval_binop_basics;
    Alcotest.test_case "eval unop" `Quick test_eval_unop;
    Alcotest.test_case "lowering shape" `Quick test_lowering_shape;
    Alcotest.test_case "lowering lines" `Quick test_lowering_lines;
    Alcotest.test_case "lowering short circuit" `Quick test_lowering_short_circuit;
    Alcotest.test_case "lowering break/continue" `Quick test_lowering_break_continue;
    Alcotest.test_case "dominators" `Quick test_dominators;
    Alcotest.test_case "loops found" `Quick test_loops_found;
    Alcotest.test_case "nested loop depth" `Quick test_nested_loop_depth;
    Alcotest.test_case "preheader idempotent" `Quick test_preheader_idempotent;
    Alcotest.test_case "liveness params" `Quick test_liveness_param_live;
    Alcotest.test_case "mem2reg promotes scalars" `Quick test_mem2reg_promotes_scalars;
    Alcotest.test_case "mem2reg keeps arrays" `Quick test_mem2reg_keeps_arrays;
    Alcotest.test_case "mem2reg inserts dbg" `Quick test_mem2reg_inserts_dbg;
    Alcotest.test_case "verifier missing target" `Quick test_verifier_catches_breakage;
    Alcotest.test_case "verifier double def" `Quick test_verifier_catches_double_def;
    QCheck_alcotest.to_alcotest qcheck_shift_total;
    QCheck_alcotest.to_alcotest qcheck_mem2reg_semantics;
  ]
