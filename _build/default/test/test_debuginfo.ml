(** Property tests over emitted debug information: structural invariants
    that every binary, at every configuration, must satisfy. *)

module C = Debugtuner.Config
module T = Debugtuner.Toolchain

let all_configs =
  List.concat_map
    (fun comp ->
      List.map (fun l -> C.make comp l) (C.standard_levels comp))
    [ C.Gcc; C.Clang ]
  @ [ C.make C.Gcc C.O0 ]

let check_invariants (bin : Emit.binary) =
  let code_len = Array.length bin.Emit.code in
  (* Line-table entries point at real addresses, sorted. *)
  let rec sorted = function
    | (a : Dwarfish.line_entry) :: (b :: _ as rest) ->
        a.Dwarfish.addr <= b.Dwarfish.addr && sorted rest
    | _ -> true
  in
  if not (sorted bin.Emit.debug.Dwarfish.line_table) then
    failwith "line table unsorted";
  List.iter
    (fun (e : Dwarfish.line_entry) ->
      if e.Dwarfish.addr < 0 || e.Dwarfish.addr >= code_len then
        failwith "line entry out of code range";
      if e.Dwarfish.line <= 0 then failwith "non-positive line")
    bin.Emit.debug.Dwarfish.line_table;
  (* Function regions tile the address space. *)
  Array.iteri
    (fun i (fi : Emit.func_info) ->
      if fi.Emit.fi_entry > fi.Emit.fi_end then failwith "inverted function";
      if i > 0 then begin
        let prev = bin.Emit.funcs.(i - 1) in
        if prev.Emit.fi_end <> fi.Emit.fi_entry then
          failwith "functions not contiguous"
      end)
    bin.Emit.funcs;
  (* Location ranges are well-formed and inside the code. *)
  List.iter
    (fun (vi : Dwarfish.var_info) ->
      List.iter
        (fun (r : Dwarfish.range) ->
          if r.Dwarfish.lo >= r.Dwarfish.hi then failwith "empty range";
          if r.Dwarfish.lo < 0 || r.Dwarfish.hi > code_len then
            failwith "range outside code")
        vi.Dwarfish.vi_ranges)
    bin.Emit.debug.Dwarfish.vars;
  (* Every variable range lies within one function's region (debug info
     never spans functions). *)
  List.iter
    (fun (vi : Dwarfish.var_info) ->
      List.iter
        (fun (r : Dwarfish.range) ->
          let containing =
            Array.to_list bin.Emit.funcs
            |> List.filter (fun (fi : Emit.func_info) ->
                   r.Dwarfish.lo >= fi.Emit.fi_entry
                   && r.Dwarfish.hi <= fi.Emit.fi_end)
          in
          if containing = [] then failwith "range spans functions")
        vi.Dwarfish.vi_ranges)
    bin.Emit.debug.Dwarfish.vars

let qcheck_invariants =
  QCheck.Test.make ~name:"debug info structurally valid on random programs"
    ~count:20
    QCheck.(int_range 1 30_000)
    (fun seed ->
      let src = Synth.generate ~seed in
      let ast = Minic.Typecheck.parse_and_check src in
      List.for_all
        (fun cfg ->
          let ast = ast in
          let bin = T.compile ast ~config:cfg ~roots:[ "main" ] in
          check_invariants bin;
          true)
        all_configs)

let test_suite_invariants () =
  List.iter
    (fun (p : Suite_types.sprogram) ->
      let ast = Suite_types.ast p in
      List.iter
        (fun cfg ->
          let bin = T.compile ast ~config:cfg ~roots:(Suite_types.roots p) in
          check_invariants bin)
        all_configs)
    Programs.all

let test_o0_lines_cover_every_statement () =
  (* At O0 every executed statement line must be steppable. *)
  let p = Programs.find "wasm3" in
  let ast = Suite_types.ast p in
  let bin = T.compile ast ~config:(C.make C.Gcc C.O0) ~roots:(Suite_types.roots p) in
  let dr = Minic.Defranges.analyze ast in
  let steppable = Dwarfish.steppable_lines bin.Emit.debug in
  List.iter
    (fun (f : Minic.Ast.func) ->
      Minic.Defranges.Int_set.iter
        (fun line ->
          Alcotest.(check bool)
            (Printf.sprintf "line %d steppable at O0" line)
            true (List.mem line steppable))
        (Minic.Defranges.statement_lines dr ~func:f.Minic.Ast.fname))
    ast.Minic.Ast.funcs

let test_optimization_shrinks_debug_monotonically () =
  (* Hybrid product at Og must be >= O3 on every suite program (gcc). *)
  List.iter
    (fun name ->
      let prepared = Debugtuner.Evaluation.prepare (Programs.find name) in
      let product lvl =
        Debugtuner.Evaluation.product prepared (C.make C.Gcc lvl)
      in
      Alcotest.(check bool)
        (name ^ ": Og at least as debuggable as O3")
        true
        (product C.Og >= product C.O3 -. 1e-9))
    [ "zlib"; "libexif"; "lighttpd" ]

let test_available_at_respects_usability () =
  let p = Programs.find "libpng" in
  let ast = Suite_types.ast p in
  let bin = T.compile ast ~config:(C.make C.Gcc C.O2) ~roots:(Suite_types.roots p) in
  (* No variable reported available may rest on an unusable range. *)
  Array.iteri
    (fun addr _ ->
      List.iter
        (fun ((v : Ir.var_id), _) ->
          let ranges = Dwarfish.var_ranges bin.Emit.debug v in
          let usable_covers =
            List.exists
              (fun (r : Dwarfish.range) ->
                r.Dwarfish.usable && addr >= r.Dwarfish.lo && addr < r.Dwarfish.hi)
              ranges
          in
          Alcotest.(check bool) "availability implies usable range" true
            usable_covers)
        (Dwarfish.available_at bin.Emit.debug addr))
    bin.Emit.code

let tests =
  [
    QCheck_alcotest.to_alcotest qcheck_invariants;
    Alcotest.test_case "suite binaries structurally valid" `Quick
      test_suite_invariants;
    Alcotest.test_case "O0 steppability complete" `Quick
      test_o0_lines_cover_every_statement;
    Alcotest.test_case "debug quality monotone Og>=O3" `Quick
      test_optimization_shrinks_debug_monotonically;
    Alcotest.test_case "available_at usability" `Quick
      test_available_at_respects_usability;
  ]
