(** Tests for the util library: PRNG determinism and distribution
    sanity, statistics helpers, table rendering. *)

let check_float = Alcotest.(check (float 1e-9))

let test_rng_deterministic () =
  let a = Util.Rng.create 42 and b = Util.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Util.Rng.bits a) (Util.Rng.bits b)
  done

let test_rng_seed_sensitivity () =
  let a = Util.Rng.create 1 and b = Util.Rng.create 2 in
  let xs = List.init 16 (fun _ -> Util.Rng.bits a) in
  let ys = List.init 16 (fun _ -> Util.Rng.bits b) in
  Alcotest.(check bool) "different seeds differ" true (xs <> ys)

let test_rng_int_range () =
  let rng = Util.Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Util.Rng.int rng 10 in
    Alcotest.(check bool) "in [0,10)" true (v >= 0 && v < 10);
    let w = Util.Rng.int_in rng (-5) 5 in
    Alcotest.(check bool) "in [-5,5]" true (w >= -5 && w <= 5)
  done

let test_rng_copy_split () =
  let a = Util.Rng.create 9 in
  ignore (Util.Rng.bits a);
  let c = Util.Rng.copy a in
  Alcotest.(check int) "copy continues identically" (Util.Rng.bits a)
    (Util.Rng.bits c);
  let s1 = Util.Rng.split a in
  let s2 = Util.Rng.split a in
  Alcotest.(check bool) "splits independent" true
    (Util.Rng.bits s1 <> Util.Rng.bits s2)

let test_rng_shuffle_permutes () =
  let rng = Util.Rng.create 3 in
  let arr = Array.init 20 (fun i -> i) in
  Util.Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 (fun i -> i)) sorted

let test_mean_median () =
  check_float "mean" 2.5 (Util.Stats.mean [ 1.0; 2.0; 3.0; 4.0 ]);
  check_float "median odd" 2.0 (Util.Stats.median [ 3.0; 1.0; 2.0 ]);
  check_float "median even" 2.5 (Util.Stats.median [ 4.0; 1.0; 2.0; 3.0 ])

let test_geomean () =
  check_float "geomean" 2.0 (Util.Stats.geomean [ 1.0; 4.0 ]);
  check_float "geomean of equal" 3.0 (Util.Stats.geomean [ 3.0; 3.0; 3.0 ]);
  Alcotest.(check bool) "zero clamped, not zeroing" true
    (Util.Stats.geomean [ 0.0; 1.0 ] > 0.0 || Util.Stats.geomean [ 0.0; 1.0 ] = 0.0)

let test_geo_stddev () =
  let v = Util.Stats.geo_stddev [ 2.0; 2.0; 2.0 ] in
  check_float "no variation -> 1" 1.0 v;
  Alcotest.(check bool) "variation > 1" true
    (Util.Stats.geo_stddev [ 1.0; 4.0 ] > 1.0)

let test_pct_delta () =
  check_float "8%" 8.0 (Util.Stats.pct_delta 0.25 0.27);
  check_float "negative" (-10.0) (Util.Stats.pct_delta 1.0 0.9)

let test_average_rank () =
  (* b first everywhere; a second; c third or missing. *)
  let ranked =
    Util.Stats.average_rank [ [ "b"; "a"; "c" ]; [ "b"; "a" ]; [ "b"; "c"; "a" ] ]
  in
  (match ranked with
  | (first, _) :: _ -> Alcotest.(check string) "b wins" "b" first
  | [] -> Alcotest.fail "empty ranking");
  let keys = List.map fst ranked in
  Alcotest.(check int) "all keys present" 3 (List.length keys)

let test_tablefmt_render () =
  let t =
    Util.Tablefmt.make ~title:"t" ~header:[ "a"; "bb" ]
      [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  let s = Util.Tablefmt.render t in
  Alcotest.(check bool) "title present" true
    (String.length s > 0 && String.sub s 0 4 = "== t");
  (* Columns padded: header line contains "a    bb" with 'a' padded to
     width 3. *)
  Alcotest.(check bool) "contains padded rows" true
    (String.length s > 20)

let test_tablefmt_formats () =
  Alcotest.(check string) "f2" "3.14" (Util.Tablefmt.f2 3.14159);
  Alcotest.(check string) "f4" "0.5000" (Util.Tablefmt.f4 0.5);
  Alcotest.(check string) "pct sign" "+8.00" (Util.Tablefmt.pct 8.0);
  Alcotest.(check string) "pct neg" "-4.62" (Util.Tablefmt.pct (-4.62))

let qcheck_rng_bounds =
  QCheck.Test.make ~name:"rng int always in range" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, n) ->
      let rng = Util.Rng.create seed in
      let v = Util.Rng.int rng n in
      v >= 0 && v < n)

let qcheck_geomean_bounds =
  QCheck.Test.make ~name:"geomean between min and max" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 20) (float_range 0.01 100.0))
    (fun xs ->
      let g = Util.Stats.geomean xs in
      let lo = List.fold_left min infinity xs in
      let hi = List.fold_left max neg_infinity xs in
      g >= lo -. 1e-9 && g <= hi +. 1e-9)

let test_scatter () =
  Alcotest.(check string) "no points"
    "== empty == (no points)\n"
    (Util.Tablefmt.scatter ~title:"empty" ~width:10 ~height:4 ~xlabel:"x"
       ~ylabel:"y" []);
  let out =
    Util.Tablefmt.scatter ~title:"t" ~width:20 ~height:5 ~xlabel:"speed"
      ~ylabel:"debug"
      [ (0.0, 0.0, 'a'); (1.0, 1.0, 'b'); (0.5, 0.5, 'c') ]
  in
  List.iter
    (fun affix ->
      let n = String.length affix and m = String.length out in
      let rec go i = i + n <= m && (String.sub out i n = affix || go (i + 1)) in
      Alcotest.(check bool) ("scatter has " ^ affix) true (go 0))
    [ "== t =="; "speed"; "debug"; "a"; "b"; "c"; "0.000 .. 1.000" ];
  (* later points overwrite earlier on collision *)
  let out2 =
    Util.Tablefmt.scatter ~title:"t" ~width:8 ~height:3 ~xlabel:"x"
      ~ylabel:"y"
      [ (0.0, 0.0, 'p'); (0.0, 0.0, 'q') ]
  in
  Alcotest.(check bool) "collision keeps the later marker" true
    (not (String.contains out2 'p') && String.contains out2 'q')

let tests =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
    Alcotest.test_case "rng int range" `Quick test_rng_int_range;
    Alcotest.test_case "rng copy and split" `Quick test_rng_copy_split;
    Alcotest.test_case "rng shuffle permutes" `Quick test_rng_shuffle_permutes;
    Alcotest.test_case "mean and median" `Quick test_mean_median;
    Alcotest.test_case "geomean" `Quick test_geomean;
    Alcotest.test_case "geo stddev" `Quick test_geo_stddev;
    Alcotest.test_case "pct delta" `Quick test_pct_delta;
    Alcotest.test_case "average rank" `Quick test_average_rank;
    Alcotest.test_case "tablefmt render" `Quick test_tablefmt_render;
    Alcotest.test_case "tablefmt formats" `Quick test_tablefmt_formats;
    Alcotest.test_case "tablefmt scatter" `Quick test_scatter;
    QCheck_alcotest.to_alcotest qcheck_rng_bounds;
    QCheck_alcotest.to_alcotest qcheck_geomean_bounds;
  ]
