(** Tests for the MiniC frontend: lexer, parser, typechecker and the
    definition-range analysis. *)

open Minic

let parse src = Typecheck.parse_and_check src

let expect_check_error src =
  match parse src with
  | exception Typecheck.Error _ -> ()
  | exception Parser.Error _ -> ()
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.fail "expected a frontend error"

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)

let test_lexer_tokens () =
  let toks = Lexer.tokenize "int x = 40 + 2; // comment\nx >> 1 <= ~y" in
  let kinds = List.map fst toks in
  Alcotest.(check bool) "has kw_int" true (List.mem Lexer.KW_INT kinds);
  Alcotest.(check bool) "has shr" true (List.mem Lexer.SHR kinds);
  Alcotest.(check bool) "has le" true (List.mem Lexer.LE kinds);
  Alcotest.(check bool) "has tilde" true (List.mem Lexer.TILDE kinds);
  Alcotest.(check bool) "ends with eof" true
    (match List.rev kinds with Lexer.EOF :: _ -> true | _ -> false)

let test_lexer_lines () =
  let toks = Lexer.tokenize "int a;\nint b;\n\nint c;" in
  let line_of name =
    List.find_map
      (fun (t, l) -> if t = Lexer.IDENT name then Some l else None)
      toks
  in
  Alcotest.(check (option int)) "a line 1" (Some 1) (line_of "a");
  Alcotest.(check (option int)) "b line 2" (Some 2) (line_of "b");
  Alcotest.(check (option int)) "c line 4" (Some 4) (line_of "c")

let test_lexer_comments () =
  let toks = Lexer.tokenize "a /* multi\nline */ b // rest\nc" in
  let idents =
    List.filter_map (function Lexer.IDENT s, l -> Some (s, l) | _ -> None) toks
  in
  Alcotest.(check (list (pair string int)))
    "idents and lines"
    [ ("a", 1); ("b", 2); ("c", 3) ]
    idents

let test_lexer_gt_lt () =
  let toks = Lexer.tokenize "a < b > c << d" in
  let kinds = List.map fst toks in
  Alcotest.(check bool) "lt" true (List.mem Lexer.LT kinds);
  Alcotest.(check bool) "gt" true (List.mem Lexer.GT kinds);
  Alcotest.(check bool) "shl" true (List.mem Lexer.SHL kinds)

let test_lexer_errors () =
  (match Lexer.tokenize "a $ b" with
  | exception Lexer.Error (_, 1) -> ()
  | _ -> Alcotest.fail "expected lexer error");
  match Lexer.tokenize "/* unterminated" with
  | exception Lexer.Error (_, _) -> ()
  | _ -> Alcotest.fail "expected unterminated comment error"

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)

let test_parse_precedence () =
  let p = parse "int f() { return 1 + 2 * 3; }" in
  let f = List.hd p.Ast.funcs in
  match f.Ast.body.Ast.stmts with
  | [ { Ast.sdesc = Ast.Return (Some e); _ } ] -> (
      match e.Ast.edesc with
      | Ast.Binary (Ast.Add, { edesc = Ast.Int 1; _ }, rhs) -> (
          match rhs.Ast.edesc with
          | Ast.Binary (Ast.Mul, _, _) -> ()
          | _ -> Alcotest.fail "mul should bind tighter")
      | _ -> Alcotest.fail "expected add at top")
  | _ -> Alcotest.fail "expected single return"

let test_parse_short_circuit_structure () =
  let p = parse "int f(int a, int b) { if (a && b || !a) { return 1; } return 0; }" in
  Alcotest.(check int) "one function" 1 (List.length p.Ast.funcs)

let test_parse_for_and_single_stmt_bodies () =
  let p =
    parse
      "int f() {\n\
       int s = 0;\n\
       for (int i = 0; i < 4; i = i + 1) s = s + i;\n\
       if (s > 2) s = 0; else s = 1;\n\
       return s;\n\
       }"
  in
  let f = List.hd p.Ast.funcs in
  Alcotest.(check int) "three statements + return" 4
    (List.length f.Ast.body.Ast.stmts)

let test_parse_globals () =
  let p = parse "int g = -3;\nint arr[7];\nint main() { return g + arr[0]; }" in
  Alcotest.(check int) "two globals" 2 (List.length p.Ast.globals);
  match p.Ast.globals with
  | [ Ast.Gscalar ("g", -3); Ast.Garray ("arr", 7) ] -> ()
  | _ -> Alcotest.fail "unexpected globals"

let test_parse_block_end_lines () =
  let p = parse "int f() {\n  int x = 1;\n  return x;\n}" in
  let f = List.hd p.Ast.funcs in
  Alcotest.(check int) "closing brace line" 4 f.Ast.body.Ast.end_line

let test_parse_input_stmt () =
  (* input()/eof() must work in statement position too. *)
  let p = parse "int f() { input(); while (!eof()) { input(); } return 0; }" in
  Alcotest.(check int) "parsed" 1 (List.length p.Ast.funcs)

let test_parse_errors () =
  expect_check_error "int f() { return 1 }";
  expect_check_error "int f( { return 1; }";
  expect_check_error "int f() { int a[0]; return 0; }"

(* ------------------------------------------------------------------ *)
(* Typechecker                                                         *)

let test_check_undeclared () =
  expect_check_error "int f() { return missing; }";
  expect_check_error "int f() { missing = 3; return 0; }";
  expect_check_error "int f() { return g(1); }"

let test_check_shapes () =
  expect_check_error "int f() { int a[4]; return a; }";
  expect_check_error "int f() { int x; return x[0]; }";
  expect_check_error "int g(int a) { return a; } int f() { return g(1, 2); }"

let test_check_shadowing () =
  expect_check_error "int f(int x) { int x; return x; }";
  expect_check_error "int f() { int x; if (1) { int x; } return x; }";
  (* Shadowing a global by a local is allowed. *)
  let p = parse "int x; int f() { int x = 1; return x; }" in
  Alcotest.(check int) "ok" 1 (List.length p.Ast.funcs)

let test_check_break_continue () =
  expect_check_error "int f() { break; return 0; }";
  expect_check_error "int f() { continue; return 0; }";
  let p = parse "int f() { while (1) { break; } return 0; }" in
  Alcotest.(check int) "ok" 1 (List.length p.Ast.funcs)

let test_check_scopes_expire () =
  (* A block-local variable is out of scope after the block. *)
  expect_check_error "int f() { if (1) { int y = 1; } return y; }"

let test_check_builtin_shadowing () =
  expect_check_error "int input() { return 0; }";
  expect_check_error "int f() { int eof = 1; return eof; }"

(* ------------------------------------------------------------------ *)
(* Definition ranges                                                   *)

let defrange_src =
  "int helper(int p) {\n\
  \  int a = p;\n\
  \  return a;\n\
   }\n\
   int main() {\n\
  \  int x;\n\
  \  int y = 5;\n\
  \  x = y + 1;\n\
  \  if (x > 3) {\n\
  \    int z = 2;\n\
  \    y = z;\n\
  \  }\n\
  \  return x;\n\
   }"

let test_defranges_basic () =
  let p = parse defrange_src in
  let dr = Defranges.analyze p in
  (* y defined from its initialized declaration (line 7). *)
  Alcotest.(check bool) "y not defined at 6" false
    (Defranges.in_def_range dr ~func:"main" ~var:"y" ~line:6);
  Alcotest.(check bool) "y defined at 8" true
    (Defranges.in_def_range dr ~func:"main" ~var:"y" ~line:8);
  (* x declared uninitialized at 6, first assigned at 8. *)
  Alcotest.(check bool) "x not defined at 7" false
    (Defranges.in_def_range dr ~func:"main" ~var:"x" ~line:7);
  Alcotest.(check bool) "x defined at 9" true
    (Defranges.in_def_range dr ~func:"main" ~var:"x" ~line:9);
  (* z scoped to the if block (lines 10-12). *)
  Alcotest.(check bool) "z defined at 11" true
    (Defranges.in_def_range dr ~func:"main" ~var:"z" ~line:11);
  Alcotest.(check bool) "z out of scope at 13" false
    (Defranges.in_def_range dr ~func:"main" ~var:"z" ~line:13)

let test_defranges_params () =
  let p = parse defrange_src in
  let dr = Defranges.analyze p in
  Alcotest.(check bool) "param defined at function start" true
    (Defranges.in_def_range dr ~func:"helper" ~var:"p" ~line:1);
  Alcotest.(check bool) "param defined in body" true
    (Defranges.in_def_range dr ~func:"helper" ~var:"p" ~line:3)

let test_defranges_defined_at () =
  let p = parse defrange_src in
  let dr = Defranges.analyze p in
  let at8 = Defranges.defined_at dr ~func:"main" ~line:8 in
  Alcotest.(check bool) "y at 8" true (List.mem "y" at8);
  Alcotest.(check bool) "z not at 8" false (List.mem "z" at8)

let test_defranges_statement_lines () =
  let p = parse defrange_src in
  let dr = Defranges.analyze p in
  let lines = Defranges.statement_lines dr ~func:"main" in
  Alcotest.(check bool) "line 8 is a statement" true
    (Defranges.Int_set.mem 8 lines);
  Alcotest.(check bool) "line 1 is not main's" false
    (Defranges.Int_set.mem 1 lines)

let test_defranges_in_scope_vs_defined () =
  let p = parse defrange_src in
  let dr = Defranges.analyze p in
  (* x is in scope at line 7 but not yet defined: exactly the gap the
     hybrid method exploits. *)
  Alcotest.(check bool) "x in scope at 7" true
    (Defranges.in_scope dr ~func:"main" ~var:"x" ~line:7);
  Alcotest.(check bool) "x not defined at 7" false
    (Defranges.in_def_range dr ~func:"main" ~var:"x" ~line:7)

(* ------------------------------------------------------------------ *)
(* Pretty-printer round trip                                           *)

let test_pretty_roundtrip () =
  let src =
    "int g;\n\
     int f(int a) {\n\
  \  int s = 0;\n\
  \  for (int i = 0; i < a; i = i + 1) {\n\
  \    s = s + i;\n\
  \  }\n\
  \  if (s > 3 && a != 0) {\n\
  \    output(s % 7);\n\
  \  } else {\n\
  \    s = -s;\n\
  \  }\n\
  \  return s;\n\
     }"
  in
  let p = parse src in
  let printed = Pretty.program_to_string p in
  let p2 = parse printed in
  let printed2 = Pretty.program_to_string p2 in
  Alcotest.(check string) "fixpoint after one round" printed printed2

let qcheck_synth_parses =
  QCheck.Test.make ~name:"synthetic programs always parse and check" ~count:60
    QCheck.(int_range 1 100000)
    (fun seed ->
      let src = Synth.generate ~seed in
      match parse src with _ -> true | exception _ -> false)

let tests =
  [
    Alcotest.test_case "lexer tokens" `Quick test_lexer_tokens;
    Alcotest.test_case "lexer line numbers" `Quick test_lexer_lines;
    Alcotest.test_case "lexer comments" `Quick test_lexer_comments;
    Alcotest.test_case "lexer < > <<" `Quick test_lexer_gt_lt;
    Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
    Alcotest.test_case "parser precedence" `Quick test_parse_precedence;
    Alcotest.test_case "parser short-circuit" `Quick test_parse_short_circuit_structure;
    Alcotest.test_case "parser for and single bodies" `Quick
      test_parse_for_and_single_stmt_bodies;
    Alcotest.test_case "parser globals" `Quick test_parse_globals;
    Alcotest.test_case "parser block end lines" `Quick test_parse_block_end_lines;
    Alcotest.test_case "parser input statement" `Quick test_parse_input_stmt;
    Alcotest.test_case "parser errors" `Quick test_parse_errors;
    Alcotest.test_case "check undeclared" `Quick test_check_undeclared;
    Alcotest.test_case "check shapes" `Quick test_check_shapes;
    Alcotest.test_case "check shadowing" `Quick test_check_shadowing;
    Alcotest.test_case "check break/continue" `Quick test_check_break_continue;
    Alcotest.test_case "check scope expiry" `Quick test_check_scopes_expire;
    Alcotest.test_case "check builtin shadowing" `Quick test_check_builtin_shadowing;
    Alcotest.test_case "defranges basics" `Quick test_defranges_basic;
    Alcotest.test_case "defranges params" `Quick test_defranges_params;
    Alcotest.test_case "defranges defined_at" `Quick test_defranges_defined_at;
    Alcotest.test_case "defranges statement lines" `Quick
      test_defranges_statement_lines;
    Alcotest.test_case "defranges scope vs defined" `Quick
      test_defranges_in_scope_vs_defined;
    Alcotest.test_case "pretty roundtrip" `Quick test_pretty_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_synth_parses;
  ]
