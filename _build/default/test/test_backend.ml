(** Tests for the backend: out-of-SSA, register allocation, machine
    passes, emission and the location-list builder. *)

let build ?(opts = Mach.opts_o0) ?(entry_values = false) src =
  let ast = Minic.Typecheck.parse_and_check src in
  let p = Lower.lower_program ast in
  Hashtbl.iter (fun _ fn -> Mem2reg.run fn) p.Ir.funcs;
  Cleanup.run_program p;
  let fns =
    Hashtbl.fold (fun _ fn acc -> fn :: acc) p.Ir.funcs []
    |> List.sort (fun (a : Ir.fn) b -> compare a.Ir.f_line b.Ir.f_line)
  in
  let mfuncs =
    List.map
      (fun fn ->
        let m = Isel.translate_fn fn opts in
        Mach_passes.run m opts;
        m)
      fns
  in
  Emit.emit ~icf:opts.Mach.icf ~entry_values
    { Mach.mfuncs; mglobals = p.Ir.prog_globals }

let run bin ~entry ~input =
  (Vm.run bin ~entry ~input Vm.default_opts).Vm.output

let loop_src =
  "int f(int n) {\n\
   int s = 0;\n\
   int i = 0;\n\
   while (i < n) {\n\
   s = s + i * i;\n\
   i = i + 1;\n\
   }\n\
   output(s);\n\
   return s;\n\
   }"

(* ------------------------------------------------------------------ *)
(* Register allocation                                                 *)

let test_regalloc_respects_k_registers () =
  (* Lots of simultaneously-live values force spilling; the result must
     still be correct. *)
  let src =
    "int f() {\n\
     int a = input();\n\
     int v0 = a + 1;\n\
     int v1 = a + 2;\n\
     int v2 = a + 3;\n\
     int v3 = a + 4;\n\
     int v4 = a + 5;\n\
     int v5 = a + 6;\n\
     int v6 = a + 7;\n\
     int v7 = a + 8;\n\
     int v8 = a + 9;\n\
     int v9 = a + 10;\n\
     int v10 = a + 11;\n\
     int v11 = a + 12;\n\
     output(v0 + v11);\n\
     output(v1 * v10);\n\
     output(v2 + v9);\n\
     output(v3 * v8);\n\
     output(v4 + v7);\n\
     output(v5 * v6);\n\
     return 0;\n\
     }"
  in
  let bin = build src in
  Alcotest.(check (list int)) "spilled code correct"
    [ 15; 36; 15; 50; 15; 56 ]
    (run bin ~entry:"f" ~input:[ 1 ])

let test_coalescing_preserves_semantics () =
  let with_c = build ~opts:{ Mach.opts_o0 with Mach.coalesce = true } loop_src in
  let without = build loop_src in
  Alcotest.(check (list int)) "same output"
    (run without ~entry:"f" ~input:[ 9 ])
    (run with_c ~entry:"f" ~input:[ 9 ])

let test_coalescing_reduces_code () =
  (* Coalescing can only delete copies, never add them; on phi-heavy
     code it usually deletes some (the allocator may already unify
     copy-related registers by luck, hence <=). *)
  let count_movs (bin : Emit.binary) =
    Array.fold_left
      (fun acc op ->
        match op with Emit.Eins (Mach.Mmov _) -> acc + 1 | _ -> acc)
      0 bin.Emit.code
  in
  let with_c = build ~opts:{ Mach.opts_o0 with Mach.coalesce = true } loop_src in
  let without = build loop_src in
  Alcotest.(check bool) "no more copies with coalescing" true
    (count_movs with_c <= count_movs without)

let test_spill_slot_sharing_shrinks_frame () =
  let src =
    "int f(int a) {\n\
     int x = a * 2;\n\
     output(x);\n\
     int y = a * 3;\n\
     output(y);\n\
     int z = a * 5;\n\
     output(z);\n\
     int w0 = a + 1;\n\
     int w1 = a + 2;\n\
     int w2 = a + 3;\n\
     int w3 = a + 4;\n\
     int w4 = a + 5;\n\
     int w5 = a + 6;\n\
     int w6 = a + 7;\n\
     int w7 = a + 8;\n\
     int w8 = a + 9;\n\
     output(w0 + w1 + w2 + w3 + w4 + w5 + w6 + w7 + w8);\n\
     return 0;\n\
     }"
  in
  let shared = build ~opts:{ Mach.opts_o0 with Mach.share_spill_slots = true } src in
  let unshared = build src in
  let frame (bin : Emit.binary) =
    (Array.get bin.Emit.funcs 0).Emit.fi_frame_words
  in
  Alcotest.(check bool) "shared frame <= unshared" true
    (frame shared <= frame unshared);
  Alcotest.(check (list int)) "same outputs"
    (run unshared ~entry:"f" ~input:[ 2 ])
    (run shared ~entry:"f" ~input:[ 2 ])

(* ------------------------------------------------------------------ *)
(* Machine passes                                                      *)

let mach_opt_cases =
  [
    ("schedule", { Mach.opts_o0 with Mach.schedule = true });
    ("sink", { Mach.opts_o0 with Mach.sink = true });
    ("tail_merge", { Mach.opts_o0 with Mach.tail_merge = true });
    ("place_blocks", { Mach.opts_o0 with Mach.place_blocks = true });
    ("shrink_wrap", { Mach.opts_o0 with Mach.shrink_wrap = true });
    ("coalesce", { Mach.opts_o0 with Mach.coalesce = true });
    ( "all",
      {
        Mach.coalesce = true;
        share_spill_slots = true;
        shrink_wrap = true;
        schedule = true;
        sched_keep_lines = false;
        sink = true;
        tail_merge = true;
        place_blocks = true;
        icf = true;
      } );
  ]

let branchy_src =
  "int g(int x) { return x * 3 + 1; }\n\
   int f(int n) {\n\
   int s = 0;\n\
   int i = 0;\n\
   while (i < n) {\n\
   if (i % 3 == 0) {\n\
   s = s + g(i);\n\
   } else {\n\
   s = s - g(i);\n\
   }\n\
   i = i + 1;\n\
   }\n\
   output(s);\n\
   return s;\n\
   }"

let test_machine_passes_preserve_semantics () =
  let base = run (build branchy_src) ~entry:"f" ~input:[ 11 ] in
  List.iter
    (fun (name, opts) ->
      let bin = build ~opts branchy_src in
      Alcotest.(check (list int)) name base (run bin ~entry:"f" ~input:[ 11 ]))
    mach_opt_cases

let test_schedule_drops_lines () =
  let with_sched = build ~opts:{ Mach.opts_o0 with Mach.schedule = true } branchy_src in
  let without = build branchy_src in
  let lines (bin : Emit.binary) =
    List.length bin.Emit.debug.Dwarfish.line_table
  in
  Alcotest.(check bool) "scheduling loses line entries" true
    (lines with_sched <= lines without)

let test_tail_merge_shrinks () =
  let src =
    "int f(int a) {\n\
     int r = 0;\n\
     if (a > 0) {\n\
     r = a * 7;\n\
     r = r + 3;\n\
     output(r);\n\
     } else {\n\
     r = a * 9;\n\
     r = r + 3;\n\
     output(r);\n\
     }\n\
     return r;\n\
     }"
  in
  let merged = build ~opts:{ Mach.opts_o0 with Mach.tail_merge = true } src in
  let plain = build src in
  Alcotest.(check bool) "tail merging emits less code" true
    (Array.length merged.Emit.code <= Array.length plain.Emit.code);
  List.iter
    (fun a ->
      Alcotest.(check (list int))
        (Printf.sprintf "a=%d" a)
        (run plain ~entry:"f" ~input:[ a ])
        (run merged ~entry:"f" ~input:[ a ]))
    [ -2; 0; 5 ]

let test_icf_folds_identical_functions () =
  let src =
    "int dup_a(int x) { return x * 5 + 2; }\n\
     int dup_b(int x) { return x * 5 + 2; }\n\
     int f(int a) { output(dup_a(a)); output(dup_b(a)); return 0; }"
  in
  let folded = build ~opts:{ Mach.opts_o0 with Mach.icf = true } src in
  let plain = build src in
  Alcotest.(check bool) "icf emits less code" true
    (Array.length folded.Emit.code < Array.length plain.Emit.code);
  Alcotest.(check (list int)) "same behaviour"
    (run plain ~entry:"f" ~input:[ 3 ])
    (run folded ~entry:"f" ~input:[ 3 ]);
  (* Both names resolve. *)
  Alcotest.(check bool) "alias registered" true
    (Hashtbl.mem folded.Emit.fn_by_name "dup_b")

let test_shrink_wrap_detection () =
  let src =
    "int f(int a) {\n\
     if (a < 0) {\n\
     return -1;\n\
     }\n\
     int acc[6];\n\
     acc[0] = a;\n\
     acc[1] = a * 2;\n\
     return acc[0] + acc[1];\n\
     }"
  in
  let bin = build ~opts:{ Mach.opts_o0 with Mach.shrink_wrap = true } src in
  let fi = bin.Emit.funcs.(0) in
  Alcotest.(check bool) "activation point recorded" true
    (fi.Emit.fi_activation <> None)

(* ------------------------------------------------------------------ *)
(* Emission and debug info                                             *)

let test_fallthrough_jumps_dropped () =
  let bin = build "int f(int a) { if (a) { output(1); } else { output(2); } return 0; }" in
  (* No jump in the code should target the immediately following
     address. *)
  Array.iteri
    (fun i op ->
      match op with
      | Emit.Ejmp t -> Alcotest.(check bool) "no fallthrough jmp" false (t = i + 1)
      | _ -> ())
    bin.Emit.code

let test_line_table_sorted_and_valid () =
  let bin = build loop_src in
  let entries = bin.Emit.debug.Dwarfish.line_table in
  let rec sorted = function
    | (a : Dwarfish.line_entry) :: (b :: _ as rest) ->
        a.Dwarfish.addr <= b.Dwarfish.addr && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by address" true (sorted entries);
  List.iter
    (fun (e : Dwarfish.line_entry) ->
      Alcotest.(check bool) "addr in range" true
        (e.Dwarfish.addr >= 0 && e.Dwarfish.addr < Array.length bin.Emit.code))
    entries

let test_location_ranges_well_formed () =
  let bin = build ~opts:{ Mach.opts_o0 with Mach.coalesce = true } branchy_src in
  List.iter
    (fun (vi : Dwarfish.var_info) ->
      List.iter
        (fun (r : Dwarfish.range) ->
          Alcotest.(check bool) "lo < hi" true (r.Dwarfish.lo < r.Dwarfish.hi))
        vi.Dwarfish.vi_ranges)
    bin.Emit.debug.Dwarfish.vars

let test_o0_vars_cover_whole_function () =
  let bin = build "int f(int a) { int x = a + 1; output(x); return x; }" in
  let fi = bin.Emit.funcs.(0) in
  (* At O0 (no mem2reg in this builder? — build runs mem2reg; use the
     toolchain O0 instead). *)
  ignore fi;
  let ast =
    Minic.Typecheck.parse_and_check
      "int f(int a) { int x = a + 1; output(x); return x; }"
  in
  let p = Lower.lower_program ast in
  let fns = Hashtbl.fold (fun _ fn acc -> fn :: acc) p.Ir.funcs [] in
  let bin0 =
    Emit.emit
      {
        Mach.mfuncs = List.map (fun fn -> Isel.translate_fn fn Mach.opts_o0) fns;
        mglobals = p.Ir.prog_globals;
      }
  in
  let fi0 = bin0.Emit.funcs.(0) in
  (* Every address of the function shows both variables. *)
  for addr = fi0.Emit.fi_entry to fi0.Emit.fi_end - 1 do
    let vars = Dwarfish.available_at bin0.Emit.debug addr in
    Alcotest.(check int)
      (Printf.sprintf "2 vars at %d" addr)
      2 (List.length vars)
  done

let test_entry_values_unusable () =
  (* Entry-value (ghost) entries appear where a bound register is later
     overwritten; a real program compiled by the gcc pipeline (which
     emits them) has plenty. *)
  let libpng = Programs.find "libpng" in
  let ast = Minic.Typecheck.parse_and_check libpng.Suite_types.p_source in
  let bin =
    Debugtuner.Toolchain.compile ast
      ~config:(Debugtuner.Config.make Debugtuner.Config.Gcc Debugtuner.Config.O2)
      ~roots:(Suite_types.roots libpng)
  in
  let unusable =
    List.exists
      (fun (vi : Dwarfish.var_info) ->
        List.exists (fun (r : Dwarfish.range) -> not r.Dwarfish.usable) vi.Dwarfish.vi_ranges)
      bin.Emit.debug.Dwarfish.vars
  in
  Alcotest.(check bool) "some entry-value ranges exist" true unusable;
  (* The clang pipeline does not emit them. *)
  let ast2 = Minic.Typecheck.parse_and_check libpng.Suite_types.p_source in
  let cbin =
    Debugtuner.Toolchain.compile ast2
      ~config:(Debugtuner.Config.make Debugtuner.Config.Clang Debugtuner.Config.O2)
      ~roots:(Suite_types.roots libpng)
  in
  let c_unusable =
    List.exists
      (fun (vi : Dwarfish.var_info) ->
        List.exists (fun (r : Dwarfish.range) -> not r.Dwarfish.usable) vi.Dwarfish.vi_ranges)
      cbin.Emit.debug.Dwarfish.vars
  in
  Alcotest.(check bool) "clang emits none" false c_unusable

let test_text_digest_ignores_debug () =
  (* entry_values adds only debug info: .text digest must match. *)
  let a = build ~entry_values:true branchy_src in
  let b = build branchy_src in
  Alcotest.(check string) "same text digest" b.Emit.text_digest a.Emit.text_digest

let hazardous_src =
  (* Back-to-back dependent pairs interleaved with independent work: the
     scheduler has something real to reorder. *)
  "int f(int a, int b) {\n\
   int p = a * 3;\n\
   int q = p + 1;\n\
   int r = b * 5;\n\
   int s = r + 2;\n\
   int t = a * 7;\n\
   int u = t + 3;\n\
   output(q + s + u);\n\
   return 0;\n\
   }"

let test_text_digest_sees_code_change () =
  let a = build hazardous_src in
  let b = build ~opts:{ Mach.opts_o0 with Mach.schedule = true } hazardous_src in
  Alcotest.(check bool) "different code -> different digest" true
    (a.Emit.text_digest <> b.Emit.text_digest);
  Alcotest.(check (list int)) "same behaviour"
    (run a ~entry:"f" ~input:[])
    (run b ~entry:"f" ~input:[])

let tests =
  [
    Alcotest.test_case "regalloc spilling" `Quick test_regalloc_respects_k_registers;
    Alcotest.test_case "coalescing semantics" `Quick test_coalescing_preserves_semantics;
    Alcotest.test_case "coalescing reduces code" `Quick test_coalescing_reduces_code;
    Alcotest.test_case "spill slot sharing" `Quick test_spill_slot_sharing_shrinks_frame;
    Alcotest.test_case "machine passes semantics" `Quick
      test_machine_passes_preserve_semantics;
    Alcotest.test_case "schedule drops lines" `Quick test_schedule_drops_lines;
    Alcotest.test_case "tail merge" `Quick test_tail_merge_shrinks;
    Alcotest.test_case "icf folds" `Quick test_icf_folds_identical_functions;
    Alcotest.test_case "shrink wrap detection" `Quick test_shrink_wrap_detection;
    Alcotest.test_case "fallthrough dropped" `Quick test_fallthrough_jumps_dropped;
    Alcotest.test_case "line table sorted" `Quick test_line_table_sorted_and_valid;
    Alcotest.test_case "location ranges well-formed" `Quick
      test_location_ranges_well_formed;
    Alcotest.test_case "O0 full-function coverage" `Quick
      test_o0_vars_cover_whole_function;
    Alcotest.test_case "entry values unusable" `Quick test_entry_values_unusable;
    Alcotest.test_case "digest ignores debug" `Quick test_text_digest_ignores_debug;
    Alcotest.test_case "digest sees code" `Quick test_text_digest_sees_code_change;
  ]
