(** Tests for the debug-info verifier (the llvm-dwarfdump --verify
    analog) and the dwarfdump pretty-printer.

    Two halves: (1) every binary the toolchain emits verifies clean, at
    every level, including random programs; (2) failure injection —
    each class of corruption planted into a healthy binary is caught by
    exactly the matching diagnostic. *)

module C = Debugtuner.Config
module T = Debugtuner.Toolchain
module V = Debug_verify

let contains s affix =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0


let compile_prog ?(config = C.make C.Gcc C.O2) name =
  let p = Programs.find name in
  T.compile (Suite_types.ast p) ~config ~roots:(Suite_types.roots p)

let kinds ds = List.sort_uniq compare (List.map (fun d -> d.V.kind) ds)

let check_kinds what expected ds =
  Alcotest.(check (list string))
    what
    (List.sort_uniq compare (List.map V.kind_to_string expected))
    (List.map V.kind_to_string (kinds ds))

(* ------------------------------------------------------------------ *)
(* Healthy binaries                                                    *)

let test_clean_suite () =
  List.iter
    (fun (name, cfg) ->
      let bin = compile_prog ~config:cfg name in
      Alcotest.(check string)
        (Printf.sprintf "%s %s clean" name (C.name cfg))
        "" (V.report (V.verify bin) |> fun s ->
            if s = "debug info verification: clean\n" then "" else s))
    [
      ("zlib", C.make C.Gcc C.O0);
      ("zlib", C.make C.Gcc C.Og);
      ("libpng", C.make C.Gcc C.O2);
      ("libpcap", C.make C.Gcc C.O3);
      ("libpng", C.make C.Clang C.O1);
      ("libyaml", C.make C.Clang C.O3);
    ]

let test_clean_disabled_variants () =
  (* Single-pass-disabled configurations keep the invariants too. *)
  let cfg = C.make C.Gcc C.O2 in
  List.iter
    (fun pass ->
      let v = { cfg with C.disabled = [ pass ] } in
      let bin = compile_prog ~config:v "zlib" in
      Alcotest.(check int)
        (pass ^ " disabled: clean")
        0
        (List.length (V.verify bin)))
    (T.pass_names cfg)

let qcheck_clean_random =
  QCheck.Test.make ~name:"random programs verify clean" ~count:25
    QCheck.(pair (int_range 1 30_000) (int_range 0 6))
    (fun (seed, cfg_idx) ->
      let configs =
        List.concat_map
          (fun comp ->
            List.map (fun l -> C.make comp l) (C.standard_levels comp))
          [ C.Gcc; C.Clang ]
      in
      let cfg = List.nth configs (cfg_idx mod List.length configs) in
      let src = Synth.generate ~seed in
      let ast = Minic.Typecheck.parse_and_check src in
      let bin = T.compile ast ~config:cfg ~roots:[ "main" ] in
      V.verify bin = [])

(* ------------------------------------------------------------------ *)
(* Failure injection                                                   *)

let test_line_addr_oob () =
  let bin = compile_prog "zlib" in
  let len = Array.length bin.Emit.code in
  Dwarfish.add_line bin.Emit.debug ~addr:(len + 3) ~line:1;
  Dwarfish.finalize bin.Emit.debug;
  check_kinds "oob line entry caught" [ V.Line_addr_oob ] (V.verify bin)

let test_line_unsorted () =
  let bin = compile_prog "zlib" in
  let d = bin.Emit.debug in
  (match d.Dwarfish.line_table with
  | a :: b :: rest -> d.Dwarfish.line_table <- b :: a :: rest
  | _ -> Alcotest.fail "expected a line table");
  check_kinds "swapped entries caught" [ V.Line_table_unsorted ] (V.verify bin)

let test_line_mismatch () =
  let bin = compile_prog "zlib" in
  let d = bin.Emit.debug in
  (match d.Dwarfish.line_table with
  | e :: rest ->
      d.Dwarfish.line_table <-
        { e with Dwarfish.line = e.Dwarfish.line + 1000 } :: rest
  | _ -> Alcotest.fail "expected a line table");
  check_kinds "wrong line caught" [ V.Line_mismatch ] (V.verify bin)

let inject_range bin r =
  let var = { Ir.origin = "injected"; name = "x" } in
  Dwarfish.add_var bin.Emit.debug ~var ~is_array:false [ r ]

let test_range_inverted () =
  let bin = compile_prog "zlib" in
  inject_range bin
    { Dwarfish.lo = 5; hi = 5; where = Dwarfish.Const 0; usable = true };
  check_kinds "empty range caught" [ V.Range_inverted ] (V.verify bin)

let test_range_oob () =
  let bin = compile_prog "zlib" in
  let len = Array.length bin.Emit.code in
  inject_range bin
    { Dwarfish.lo = 0; hi = len + 10; where = Dwarfish.Const 0; usable = true };
  check_kinds "oob range caught" [ V.Range_oob ] (V.verify bin)

let test_range_crosses_function () =
  let bin = compile_prog "zlib" in
  Alcotest.(check bool)
    "test needs two functions" true
    (Array.length bin.Emit.funcs >= 2);
  let f1 = bin.Emit.funcs.(1) in
  inject_range bin
    {
      Dwarfish.lo = 0;
      hi = f1.Emit.fi_entry + 1;
      where = Dwarfish.Const 0;
      usable = true;
    };
  check_kinds "cross-function range caught"
    [ V.Range_crosses_function ]
    (V.verify bin)

let test_bad_register () =
  let bin = compile_prog "zlib" in
  inject_range bin
    { Dwarfish.lo = 0; hi = 1; where = Dwarfish.In_reg 99; usable = true };
  check_kinds "bad register caught" [ V.Bad_register ] (V.verify bin);
  (* The reserved scratch register is not a valid variable home either. *)
  let bin2 = compile_prog "zlib" in
  inject_range bin2
    {
      Dwarfish.lo = 0;
      hi = 1;
      where = Dwarfish.In_reg Mach.num_regs;
      usable = true;
    };
  check_kinds "scratch register caught" [ V.Bad_register ] (V.verify bin2)

let test_bad_slot () =
  let bin = compile_prog "zlib" in
  inject_range bin
    { Dwarfish.lo = 0; hi = 1; where = Dwarfish.In_slot 9999; usable = true };
  check_kinds "bad slot caught" [ V.Bad_slot ] (V.verify bin)

let test_overlap_conflict () =
  let bin = compile_prog "zlib" in
  let var = { Ir.origin = "injected"; name = "x" } in
  Dwarfish.add_var bin.Emit.debug ~var ~is_array:false
    [
      { Dwarfish.lo = 0; hi = 4; where = Dwarfish.In_reg 1; usable = true };
      { Dwarfish.lo = 2; hi = 6; where = Dwarfish.In_reg 2; usable = true };
    ];
  check_kinds "conflicting overlap caught" [ V.Overlap_conflict ] (V.verify bin)

let test_overlap_agreeing_ok () =
  (* Overlapping ranges that agree on the location are legal DWARF. *)
  let bin = compile_prog "zlib" in
  let var = { Ir.origin = "injected"; name = "x" } in
  Dwarfish.add_var bin.Emit.debug ~var ~is_array:false
    [
      { Dwarfish.lo = 0; hi = 4; where = Dwarfish.In_reg 1; usable = true };
      { Dwarfish.lo = 2; hi = 6; where = Dwarfish.In_reg 1; usable = true };
    ];
  check_kinds "agreeing overlap accepted" [] (V.verify bin)

let test_ghost_overlap_ok () =
  (* Unusable (entry-value) entries may shadow usable ones — that is the
     gcc static-overestimation artifact itself, not corruption. *)
  let bin = compile_prog "zlib" in
  let var = { Ir.origin = "injected"; name = "x" } in
  Dwarfish.add_var bin.Emit.debug ~var ~is_array:false
    [
      { Dwarfish.lo = 0; hi = 4; where = Dwarfish.In_reg 1; usable = true };
      { Dwarfish.lo = 2; hi = 6; where = Dwarfish.In_reg 2; usable = false };
    ];
  check_kinds "ghost overlap accepted" [] (V.verify bin)

let test_func_bounds () =
  let bin = compile_prog "zlib" in
  let len = Array.length bin.Emit.code in
  bin.Emit.funcs.(0) <- { (bin.Emit.funcs.(0)) with Emit.fi_end = len + 5 };
  check_kinds "bad function bounds caught" [ V.Func_bounds ] (V.verify bin)

let test_report_format () =
  let bin = compile_prog "zlib" in
  Alcotest.(check string)
    "clean report" "debug info verification: clean\n"
    (V.report (V.verify bin));
  inject_range bin
    { Dwarfish.lo = 9; hi = 3; where = Dwarfish.Const 0; usable = true };
  let r = V.report (V.verify bin) in
  Alcotest.(check bool) "report names the check" true
    (contains r "range-inverted")

(* ------------------------------------------------------------------ *)
(* dwarfdump                                                           *)

let test_dump_sections () =
  let bin = compile_prog "libpng" in
  let out = Dwarfdump.dump bin in
  List.iter
    (fun affix ->
      Alcotest.(check bool) ("dump has " ^ affix) true (contains out affix))
    [ ".functions:"; ".debug_line:"; ".debug_loc:" ]

let test_dump_function_names () =
  let p = Programs.find "libpng" in
  let bin =
    T.compile (Suite_types.ast p)
      ~config:(C.make C.Gcc C.O1)
      ~roots:(Suite_types.roots p)
  in
  let out = Dwarfdump.dump ~sections:[ Dwarfdump.Functions ] bin in
  Array.iter
    (fun (fi : Emit.func_info) ->
      Alcotest.(check bool)
        ("dump lists " ^ fi.Emit.fi_name)
        true
        (contains out fi.Emit.fi_name))
    bin.Emit.funcs

let test_dump_icf_alias () =
  (* libpcap's packet_checksum/packet_digest twins fold under gcc O2+;
     the dump must show the alias. *)
  let bin = compile_prog ~config:(C.make C.Gcc C.O2) "libpcap" in
  let out = Dwarfdump.dump ~sections:[ Dwarfdump.Functions ] bin in
  Alcotest.(check bool) "ICF alias shown" true (contains out "ICF alias")

let test_dump_line_count () =
  let bin = compile_prog "zlib" in
  let out = Dwarfdump.dump ~sections:[ Dwarfdump.Lines ] bin in
  let rows =
    List.length
      (List.filter
         (fun l -> l <> "" && l.[0] = ' ' && not (contains l "address"))
         (String.split_on_char '\n' out))
  in
  Alcotest.(check int)
    "one row per line-table entry"
    (List.length bin.Emit.debug.Dwarfish.line_table)
    rows

let test_dump_entry_value_marker () =
  let p = Programs.find "zlib" in
  let bin =
    T.compile (Suite_types.ast p)
      ~config:(C.make C.Gcc C.O3)
      ~roots:(Suite_types.roots p)
  in
  let has_ghost =
    List.exists
      (fun (vi : Dwarfish.var_info) ->
        List.exists
          (fun (r : Dwarfish.range) -> not r.Dwarfish.usable)
          vi.Dwarfish.vi_ranges)
      bin.Emit.debug.Dwarfish.vars
  in
  let out = Dwarfdump.dump ~sections:[ Dwarfdump.Locs ] bin in
  Alcotest.(check bool)
    "entry-value entries marked" has_ghost
    (contains out "entry value")

let test_summary () =
  let bin = compile_prog "zlib" in
  let s = Dwarfdump.summary bin in
  Alcotest.(check bool) "mentions instruction count" true
    (contains s (string_of_int (Array.length bin.Emit.code) ^ " instruction"));
  Alcotest.(check bool) "mentions functions" true (contains s "function(s)")

let test_section_of_string () =
  Alcotest.(check bool) "parses names" true
    (Dwarfdump.section_of_string "lines" = Some Dwarfdump.Lines
    && Dwarfdump.section_of_string "debug_loc" = Some Dwarfdump.Locs
    && Dwarfdump.section_of_string "func" = Some Dwarfdump.Functions
    && Dwarfdump.section_of_string "nope" = None)

let test_locstats () =
  let stats level = Dwarfdump.locstats (compile_prog ~config:(C.make C.Gcc level) "zlib") in
  let s0 = stats C.O0 and s2 = stats C.O2 in
  List.iter
    (fun (s : Dwarfdump.locstats) ->
      Alcotest.(check int) "buckets partition the variables" s.Dwarfdump.ls_vars
        (List.fold_left (fun a (_, n) -> a + n) 0 s.Dwarfdump.ls_buckets);
      Alcotest.(check bool) "average in [0,1]" true
        (s.Dwarfdump.ls_avg_coverage >= 0.0 && s.Dwarfdump.ls_avg_coverage <= 1.0))
    [ s0; s2 ];
  (* Slot-resident O0 variables cover (nearly) their whole scope;
     optimization erodes it. *)
  Alcotest.(check bool)
    (Printf.sprintf "O0 coverage (%.2f) >= O2 coverage (%.2f)"
       s0.Dwarfdump.ls_avg_coverage s2.Dwarfdump.ls_avg_coverage)
    true
    (s0.Dwarfdump.ls_avg_coverage >= s2.Dwarfdump.ls_avg_coverage);
  let rendered = Dwarfdump.locstats_to_string s2 in
  Alcotest.(check bool) "render mentions the histogram" true
    (contains rendered "100%" && contains rendered "location statistics")

let test_bucket_edges () =
  Alcotest.(check string) "zero" "0%" (Dwarfdump.bucket_of 0.0);
  Alcotest.(check string) "full" "100%" (Dwarfdump.bucket_of 1.0);
  Alcotest.(check string) "quarter" "1-25%" (Dwarfdump.bucket_of 0.25);
  Alcotest.(check string) "over quarter" "26-50%" (Dwarfdump.bucket_of 0.26);
  Alcotest.(check string) "high" "76-99%" (Dwarfdump.bucket_of 0.99)

let test_objdump_full () =
  let bin = compile_prog "zlib" in
  let out = Objdump.disassemble bin in
  Array.iter
    (fun (fi : Emit.func_info) ->
      Alcotest.(check bool) (fi.Emit.fi_name ^ " listed") true
        (contains out (fi.Emit.fi_name ^ ":")))
    bin.Emit.funcs;
  (* one listing row per instruction *)
  let rows =
    List.length
      (List.filter
         (fun l ->
           String.length l > 7 && l.[7] = ':' && l.[0] = ' ' && l.[1] = ' ')
         (String.split_on_char '\n' out))
  in
  Alcotest.(check int) "one row per instruction"
    (Array.length bin.Emit.code) rows;
  Alcotest.(check bool) "summary present" true (contains out "instruction(s)")

let test_objdump_function_filter () =
  let bin = compile_prog "zlib" in
  let name = bin.Emit.funcs.(0).Emit.fi_name in
  let out = Objdump.disassemble ~func:name bin in
  Alcotest.(check bool) "only that function" true
    (contains out (name ^ ":")
    && not (contains out (bin.Emit.funcs.(1).Emit.fi_name ^ ":")));
  Alcotest.(check bool) "unknown function reported" true
    (contains (Objdump.disassemble ~func:"nope" bin) "no such function")

let test_objdump_line_decay () =
  (* The fraction of instructions with line info never grows with
     optimization on this program. *)
  let frac cfg =
    let bin = compile_prog ~config:cfg "zlib" in
    let annotated =
      Array.fold_left
        (fun acc l -> if l = None then acc else acc + 1)
        0 bin.Emit.line_of
    in
    float_of_int annotated /. float_of_int (Array.length bin.Emit.code)
  in
  let o0 = frac (C.make C.Gcc C.O0) and o3 = frac (C.make C.Gcc C.O3) in
  Alcotest.(check bool)
    (Printf.sprintf "O0 annotation (%.2f) >= O3 (%.2f)" o0 o3)
    true (o0 >= o3)

let tests =
  [
    Alcotest.test_case "clean on suite programs" `Quick test_clean_suite;
    Alcotest.test_case "clean with passes disabled" `Quick
      test_clean_disabled_variants;
    QCheck_alcotest.to_alcotest qcheck_clean_random;
    Alcotest.test_case "inject: line addr oob" `Quick test_line_addr_oob;
    Alcotest.test_case "inject: line table unsorted" `Quick test_line_unsorted;
    Alcotest.test_case "inject: line mismatch" `Quick test_line_mismatch;
    Alcotest.test_case "inject: inverted range" `Quick test_range_inverted;
    Alcotest.test_case "inject: oob range" `Quick test_range_oob;
    Alcotest.test_case "inject: cross-function range" `Quick
      test_range_crosses_function;
    Alcotest.test_case "inject: bad register" `Quick test_bad_register;
    Alcotest.test_case "inject: bad slot" `Quick test_bad_slot;
    Alcotest.test_case "inject: overlap conflict" `Quick test_overlap_conflict;
    Alcotest.test_case "agreeing overlap is legal" `Quick
      test_overlap_agreeing_ok;
    Alcotest.test_case "ghost overlap is legal" `Quick test_ghost_overlap_ok;
    Alcotest.test_case "inject: function bounds" `Quick test_func_bounds;
    Alcotest.test_case "report format" `Quick test_report_format;
    Alcotest.test_case "dump: all sections" `Quick test_dump_sections;
    Alcotest.test_case "dump: function names" `Quick test_dump_function_names;
    Alcotest.test_case "dump: ICF alias" `Quick test_dump_icf_alias;
    Alcotest.test_case "dump: line rows" `Quick test_dump_line_count;
    Alcotest.test_case "dump: entry-value marker" `Quick
      test_dump_entry_value_marker;
    Alcotest.test_case "dump: summary" `Quick test_summary;
    Alcotest.test_case "dump: section names" `Quick test_section_of_string;
    Alcotest.test_case "locstats shapes" `Quick test_locstats;
    Alcotest.test_case "locstats buckets" `Quick test_bucket_edges;
    Alcotest.test_case "objdump: full listing" `Quick test_objdump_full;
    Alcotest.test_case "objdump: function filter" `Quick
      test_objdump_function_filter;
    Alcotest.test_case "objdump: line decay" `Quick test_objdump_line_decay;
  ]
