(** Tests for the DWARF wire encoding: LEB128 edge cases, the
    line-number program state machine, location-expression opcodes, and
    whole-section roundtrips on real and random binaries. *)

module C = Debugtuner.Config
module T = Debugtuner.Toolchain
module D = Dwarf_encode

let uleb_roundtrip n =
  let buf = Buffer.create 8 in
  D.write_uleb buf n;
  let c = { D.data = Buffer.contents buf; pos = 0 } in
  let v = D.read_uleb c in
  (v, c.D.pos = String.length c.D.data)

let sleb_roundtrip n =
  let buf = Buffer.create 8 in
  D.write_sleb buf n;
  let c = { D.data = Buffer.contents buf; pos = 0 } in
  let v = D.read_sleb c in
  (v, c.D.pos = String.length c.D.data)

let test_uleb_cases () =
  List.iter
    (fun n ->
      let v, consumed = uleb_roundtrip n in
      Alcotest.(check int) (Printf.sprintf "uleb %d" n) n v;
      Alcotest.(check bool) "no trailing bytes" true consumed)
    [ 0; 1; 127; 128; 129; 255; 300; 16383; 16384; 1_000_000; max_int ]

let test_sleb_cases () =
  List.iter
    (fun n ->
      let v, consumed = sleb_roundtrip n in
      Alcotest.(check int) (Printf.sprintf "sleb %d" n) n v;
      Alcotest.(check bool) "no trailing bytes" true consumed)
    [ 0; 1; -1; 63; 64; -64; -65; 127; 128; -128; 8191; -8192; 1_000_000;
      -1_000_000 ]

let test_uleb_sizes () =
  (* One byte up to 127, two bytes up to 16383 — the whole point. *)
  let size n =
    let buf = Buffer.create 8 in
    D.write_uleb buf n;
    Buffer.length buf
  in
  Alcotest.(check int) "127 is one byte" 1 (size 127);
  Alcotest.(check int) "128 is two bytes" 2 (size 128);
  Alcotest.(check int) "16383 is two bytes" 2 (size 16383);
  Alcotest.(check int) "16384 is three bytes" 3 (size 16384)

let qcheck_leb_roundtrip =
  QCheck.Test.make ~name:"LEB128 roundtrips" ~count:500
    QCheck.(pair int bool)
    (fun (n, signed) ->
      if signed then fst (sleb_roundtrip n) = n
      else
        let n = abs n in
        fst (uleb_roundtrip n) = n)

(* ------------------------------------------------------------------ *)
(* Line-number program                                                 *)

let line_roundtrip entries =
  let buf = Buffer.create 64 in
  D.encode_line_program buf entries;
  D.decode_line_program { D.data = Buffer.contents buf; pos = 0 }

let test_line_program_basic () =
  let entries =
    [
      { Dwarfish.addr = 0; line = 5 };
      { Dwarfish.addr = 1; line = 6 };
      { Dwarfish.addr = 4; line = 2 } (* line goes backwards *);
      { Dwarfish.addr = 90; line = 300 } (* deltas too big for special *);
      { Dwarfish.addr = 91; line = 300 } (* same line, new address *);
    ]
  in
  Alcotest.(check bool) "roundtrip" true (line_roundtrip entries = entries)

let test_line_program_empty () =
  Alcotest.(check bool) "empty table" true (line_roundtrip [] = [])

let test_line_program_compact () =
  (* Monotone tables of small deltas should be ~1 byte per row: all
     special opcodes, like a real assembler's output. *)
  let entries =
    List.init 100 (fun i -> { Dwarfish.addr = i * 2; line = 1 + i })
  in
  let buf = Buffer.create 64 in
  D.encode_line_program buf entries;
  (* count header + rows + end-sequence *)
  Alcotest.(check bool)
    (Printf.sprintf "compact (%d bytes for 100 rows)" (Buffer.length buf))
    true
    (Buffer.length buf < 120)

let test_line_program_rejects_unsorted () =
  let entries =
    [ { Dwarfish.addr = 5; line = 1 }; { Dwarfish.addr = 2; line = 1 } ]
  in
  match line_roundtrip entries with
  | exception D.Malformed _ -> ()
  | _ -> Alcotest.fail "unsorted table must be rejected"

(* ------------------------------------------------------------------ *)
(* Whole-blob roundtrips                                               *)

let norm (d : Dwarfish.t) =
  ( d.Dwarfish.line_table,
    List.sort compare
      (List.map
         (fun (vi : Dwarfish.var_info) ->
           ( vi.Dwarfish.vi_var,
             vi.Dwarfish.vi_is_array,
             List.sort compare
               (List.map
                  (fun (r : Dwarfish.range) ->
                    (r.Dwarfish.lo, r.Dwarfish.hi, r.Dwarfish.where, r.Dwarfish.usable))
                  vi.Dwarfish.vi_ranges) ))
         d.Dwarfish.vars) )

let compile_debug name cfg =
  let p = Programs.find name in
  (T.compile (Suite_types.ast p) ~config:cfg ~roots:(Suite_types.roots p))
    .Emit.debug

let test_roundtrip_suite () =
  List.iter
    (fun (name, cfg) ->
      let d = compile_debug name cfg in
      let d' = D.decode (D.encode d) in
      Alcotest.(check bool)
        (name ^ " " ^ C.name cfg ^ " roundtrips")
        true
        (norm d = norm d'))
    [
      ("zlib", C.make C.Gcc C.O0);
      ("libpng", C.make C.Gcc C.O2) (* entry values exercised *);
      ("libpcap", C.make C.Gcc C.O3);
      ("libyaml", C.make C.Clang C.O3);
    ]

let qcheck_roundtrip_random =
  QCheck.Test.make ~name:"encode/decode roundtrips on random binaries"
    ~count:20
    QCheck.(int_range 1 40_000)
    (fun seed ->
      let src = Synth.generate ~seed in
      let ast = Minic.Typecheck.parse_and_check src in
      let bin = T.compile ast ~config:(C.make C.Gcc C.O2) ~roots:[ "main" ] in
      let d = bin.Emit.debug in
      norm (D.decode (D.encode d)) = norm d)

let test_malformed () =
  let d = compile_debug "zlib" (C.make C.Gcc C.O1) in
  let blob = D.encode d in
  let reject what s =
    match D.decode s with
    | exception D.Malformed _ -> ()
    | _ -> Alcotest.fail (what ^ " must be rejected")
  in
  reject "empty" "";
  reject "bad magic" ("XXXX" ^ String.sub blob 4 (String.length blob - 4));
  reject "truncated" (String.sub blob 0 (String.length blob - 3));
  reject "trailing garbage" (blob ^ "!");
  (* Flip a byte in the middle; either Malformed or a decode that no
     longer matches (it must never crash another way). *)
  let mid = String.length blob / 2 in
  let mutated =
    String.mapi (fun i ch -> if i = mid then Char.chr (Char.code ch lxor 0x2a) else ch) blob
  in
  (match D.decode mutated with
  | exception D.Malformed _ -> ()
  | d' ->
      (* accepted: must still be structurally a debug-info value *)
      ignore (norm d'))

let test_entry_value_encoding () =
  (* gcc O2+ emits unusable (entry-value) entries; the encoding must
     preserve the distinction via DW_OP_entry_value. *)
  let count_ghost (d : Dwarfish.t) =
    List.fold_left
      (fun acc (vi : Dwarfish.var_info) ->
        acc
        + List.length
            (List.filter
               (fun (r : Dwarfish.range) -> not r.Dwarfish.usable)
               vi.Dwarfish.vi_ranges))
      0 d.Dwarfish.vars
  in
  (* Find a suite program that actually produced entry-value entries at
     this level (which programs do depends on register pressure). *)
  let d =
    match
      List.find_map
        (fun name ->
          let d = compile_debug name (C.make C.Gcc C.O3) in
          if count_ghost d > 0 then Some d else None)
        [ "zlib"; "libpng"; "libpcap"; "libmpeg2"; "bzip2" ]
    with
    | Some d -> d
    | None -> Alcotest.fail "no suite program produced entry-value entries"
  in
  let ghosts = count_ghost d in
  Alcotest.(check int) "ghost entries preserved" ghosts
    (count_ghost (D.decode (D.encode d)))

let test_section_sizes () =
  let d = compile_debug "libpng" (C.make C.Gcc C.O2) in
  let line, locs, total = D.section_sizes d in
  Alcotest.(check bool) "sections add up (plus header)" true
    (total > line + locs && total <= line + locs + 32);
  (* The line program must be far smaller than naive pairs of ints. *)
  Alcotest.(check bool) "line program is compact" true
    (line < 16 * List.length d.Dwarfish.line_table + 8)

let test_size_shape_across_levels () =
  (* The real-DWARF phenomenon: optimizing shrinks the line program and
     fragments/grows the location lists. *)
  let sizes cfg =
    let d = compile_debug "zlib" cfg in
    let line, locs, _ = D.section_sizes d in
    (line, locs)
  in
  let l0, v0 = sizes (C.make C.Gcc C.O0) in
  let l2, v2 = sizes (C.make C.Gcc C.O2) in
  Alcotest.(check bool)
    (Printf.sprintf ".debug_line shrinks (%dB -> %dB)" l0 l2)
    true (l2 < l0);
  Alcotest.(check bool)
    (Printf.sprintf ".debug_loc grows (%dB -> %dB)" v0 v2)
    true (v2 > v0)

let tests =
  [
    Alcotest.test_case "uleb128 edge cases" `Quick test_uleb_cases;
    Alcotest.test_case "sleb128 edge cases" `Quick test_sleb_cases;
    Alcotest.test_case "uleb128 sizes" `Quick test_uleb_sizes;
    QCheck_alcotest.to_alcotest qcheck_leb_roundtrip;
    Alcotest.test_case "line program roundtrip" `Quick test_line_program_basic;
    Alcotest.test_case "line program empty" `Quick test_line_program_empty;
    Alcotest.test_case "line program compact" `Quick test_line_program_compact;
    Alcotest.test_case "line program rejects unsorted" `Quick
      test_line_program_rejects_unsorted;
    Alcotest.test_case "suite roundtrips" `Quick test_roundtrip_suite;
    QCheck_alcotest.to_alcotest qcheck_roundtrip_random;
    Alcotest.test_case "malformed inputs" `Quick test_malformed;
    Alcotest.test_case "entry values via DW_OP_entry_value" `Quick
      test_entry_value_encoding;
    Alcotest.test_case "section sizes" `Quick test_section_sizes;
    Alcotest.test_case "size shape across levels" `Quick
      test_size_shape_across_levels;
  ]
