(** Tests for the debugger (trace extraction) and the metrics. *)

module C = Debugtuner.Config
module T = Debugtuner.Toolchain

let src =
  "int f(int a) {\n\
  \  int x = a + 1;\n\
  \  int y = 0;\n\
  \  if (x > 10) {\n\
  \    y = x * 2;\n\
  \  } else {\n\
  \    y = x - 2;\n\
  \  }\n\
  \  output(y);\n\
  \  return y;\n\
   }\n\
   int main() {\n\
  \  f(input());\n\
  \  return 0;\n\
   }"

let compile config = T.compile_source src ~config ~roots:[ "main" ]

let o0 = lazy (compile (C.make C.Gcc C.O0))

let test_trace_steps_executed_lines () =
  let bin = Lazy.force o0 in
  let t = Debugger.trace bin ~entry:"main" ~inputs:[ [ 20 ] ] in
  let stepped = Debugger.stepped_lines t in
  (* The then-branch (line 5) runs; the else (line 7) does not. *)
  Alcotest.(check bool) "line 5 stepped" true (List.mem 5 stepped);
  Alcotest.(check bool) "line 7 not stepped" false (List.mem 7 stepped)

let test_trace_accumulates_inputs () =
  let bin = Lazy.force o0 in
  let t = Debugger.trace bin ~entry:"main" ~inputs:[ [ 20 ]; [ 1 ] ] in
  let stepped = Debugger.stepped_lines t in
  Alcotest.(check bool) "both branches covered" true
    (List.mem 5 stepped && List.mem 7 stepped)

let test_trace_vars_at_o0 () =
  let bin = Lazy.force o0 in
  let t = Debugger.trace bin ~entry:"main" ~inputs:[ [ 20 ] ] in
  let vars = Debugger.vars_at t 9 in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " visible at line 9") true
        (Debugger.Var_set.exists
           (fun (v : Ir.var_id) -> v.Ir.name = name && v.Ir.origin = "f")
           vars))
    [ "a"; "x"; "y" ]

let test_trace_temporary_breakpoints () =
  let bin = Lazy.force o0 in
  let t = Debugger.trace bin ~entry:"main" ~inputs:[ [ 20 ]; [ 21 ] ] in
  (* hit_order never repeats a line. *)
  let sorted = List.sort_uniq compare t.Debugger.hit_order in
  Alcotest.(check int) "lines recorded once"
    (List.length t.Debugger.hit_order)
    (List.length sorted)

let test_steppable_superset_of_stepped () =
  let bin = compile (C.make C.Gcc C.O2) in
  let t = Debugger.trace bin ~entry:"main" ~inputs:[ [ 20 ]; [ 1 ] ] in
  List.iter
    (fun l ->
      Alcotest.(check bool) "stepped is steppable" true
        (List.mem l t.Debugger.steppable))
    (Debugger.stepped_lines t)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let measure config =
  let ast = Minic.Typecheck.parse_and_check src in
  let defranges = Minic.Defranges.analyze ast in
  let unopt = Lazy.force o0 in
  let opt = compile config in
  let inputs = [ [ 20 ]; [ 1 ] ] in
  let unopt_trace = Debugger.trace unopt ~entry:"main" ~inputs in
  let opt_trace = Debugger.trace opt ~entry:"main" ~inputs in
  Metrics.all
    { Metrics.defranges; unopt_trace; opt_trace; unopt_bin = unopt; opt_bin = opt }

let test_metrics_identity_at_o0 () =
  let m = measure (C.make C.Gcc C.O0) in
  Alcotest.(check (float 1e-9)) "dynamic availability 1 at O0" 1.0
    m.Metrics.m_dynamic.Metrics.availability;
  Alcotest.(check (float 1e-9)) "line coverage 1 at O0" 1.0
    m.Metrics.m_dynamic.Metrics.line_coverage

let test_metrics_bounded () =
  List.iter
    (fun config ->
      let m = measure config in
      List.iter
        (fun (s : Metrics.score) ->
          Alcotest.(check bool) "in [0,1]" true
            (s.Metrics.availability >= 0.0 && s.Metrics.availability <= 1.0
            && s.Metrics.line_coverage >= 0.0
            && s.Metrics.line_coverage <= 1.0);
          Alcotest.(check (float 1e-9)) "product = a * lc"
            (s.Metrics.availability *. s.Metrics.line_coverage)
            s.Metrics.product)
        [ m.Metrics.m_static; m.Metrics.m_static_dbg; m.Metrics.m_dynamic; m.Metrics.m_hybrid ])
    [ C.make C.Gcc C.O1; C.make C.Gcc C.O3; C.make C.Clang C.O2 ]

let test_hybrid_corrects_dynamic () =
  (* The hybrid method filters the inflated O0 baseline, so its
     availability is >= the dynamic one. *)
  List.iter
    (fun config ->
      let m = measure config in
      Alcotest.(check bool) "hybrid >= dynamic availability" true
        (m.Metrics.m_hybrid.Metrics.availability
         >= m.Metrics.m_dynamic.Metrics.availability -. 1e-9))
    [ C.make C.Gcc C.O1; C.make C.Gcc C.O2; C.make C.Clang C.O1 ]

let test_hybrid_line_coverage_equals_dynamic () =
  let m = measure (C.make C.Gcc C.O2) in
  Alcotest.(check (float 1e-9)) "identical line coverage"
    m.Metrics.m_dynamic.Metrics.line_coverage
    m.Metrics.m_hybrid.Metrics.line_coverage

let test_quality_declines_with_level () =
  let product config = (measure config).Metrics.m_hybrid.Metrics.product in
  let og = product (C.make C.Gcc C.Og) in
  let o3 = product (C.make C.Gcc C.O3) in
  Alcotest.(check bool) "Og more debuggable than O3" true (og >= o3)

let tests =
  [
    Alcotest.test_case "trace executed lines" `Quick test_trace_steps_executed_lines;
    Alcotest.test_case "trace accumulates inputs" `Quick test_trace_accumulates_inputs;
    Alcotest.test_case "trace vars at O0" `Quick test_trace_vars_at_o0;
    Alcotest.test_case "temporary breakpoints" `Quick test_trace_temporary_breakpoints;
    Alcotest.test_case "steppable superset" `Quick test_steppable_superset_of_stepped;
    Alcotest.test_case "metrics identity at O0" `Quick test_metrics_identity_at_o0;
    Alcotest.test_case "metrics bounded" `Quick test_metrics_bounded;
    Alcotest.test_case "hybrid corrects dynamic" `Quick test_hybrid_corrects_dynamic;
    Alcotest.test_case "hybrid lc = dynamic lc" `Quick
      test_hybrid_line_coverage_equals_dynamic;
    Alcotest.test_case "quality declines with level" `Quick
      test_quality_declines_with_level;
  ]
