(** Tests for the DebugTuner core: configurations, pipelines, per-pass
    disabling, evaluation, ranking, tuning and the Pareto front. *)

module C = Debugtuner.Config
module T = Debugtuner.Toolchain
module E = Debugtuner.Evaluation

let test_config_names () =
  Alcotest.(check string) "standard" "gcc-O2" (C.name (C.make C.Gcc C.O2));
  Alcotest.(check string) "dy" "clang-O1-d3"
    (C.name (C.make ~disabled:[ "a"; "b"; "c" ] C.Clang C.O1));
  Alcotest.(check bool) "clang has no Og" false
    (List.mem C.Og (C.standard_levels C.Clang))

let test_pipelines_grow_with_level () =
  let n comp l = List.length (T.pass_names (C.make comp l)) in
  Alcotest.(check bool) "gcc Og < O1 < O2 <= O3" true
    (n C.Gcc C.Og < n C.Gcc C.O1
    && n C.Gcc C.O1 < n C.Gcc C.O2
    && n C.Gcc C.O2 <= n C.Gcc C.O3);
  Alcotest.(check bool) "clang O1 < O2 <= O3" true
    (n C.Clang C.O1 < n C.Clang C.O2 && n C.Clang C.O2 <= n C.Clang C.O3)

let test_paper_pass_names_present () =
  let gcc_o2 = T.pass_names (C.make C.Gcc C.O2) in
  List.iter
    (fun p ->
      Alcotest.(check bool) (p ^ " in gcc O2") true (List.mem p gcc_o2))
    [
      "inline"; "schedule-insns2"; "inline-small-functions"; "toplevel-reorder";
      "thread-jumps"; "crossjumping"; "inline-functions"; "tree-loop-optimize";
      "expensive-opts"; "if-conversion"; "tree-coalesce-vars"; "shrink-wrap";
      "ira-share-spill-slots"; "reorder-blocks"; "tree-ter"; "tree-sink";
      "tree-dominator-opts"; "tree-fre"; "tree-forwprop"; "dce";
      "guess-branch-probability"; "ipa-pure-const";
    ];
  let clang_o3 = T.pass_names (C.make C.Clang C.O3) in
  List.iter
    (fun p ->
      Alcotest.(check bool) (p ^ " in clang O3") true (List.mem p clang_o3))
    [
      "Inliner"; "SimplifyCFG"; "Machine code sinking"; "JumpThreading";
      "LoopStrengthReduce"; "Branch Prob BB Placement"; "DSE"; "LoopUnroll";
      "Control Flow Optimizer"; "SROA"; "InstCombine"; "EarlyCSE"; "GVN";
    ]

let libpng = lazy (E.prepare (Programs.find "libpng"))

let test_disabling_pass_changes_or_keeps_binary () =
  let prepared = Lazy.force libpng in
  let base = E.compile prepared (C.make C.Gcc C.O2) in
  let some_changed = ref false in
  List.iter
    (fun pass ->
      let bin = E.compile prepared (C.make ~disabled:[ pass ] C.Gcc C.O2) in
      if bin.Emit.text_digest <> base.Emit.text_digest then some_changed := true)
    (T.pass_names (C.make C.Gcc C.O2));
  Alcotest.(check bool) "at least one pass affects .text" true !some_changed

let test_disable_all_is_weak () =
  (* Disabling every pass must still be correct and slower than the full
     level. *)
  let prepared = Lazy.force libpng in
  let full = C.make C.Gcc C.O2 in
  let none = C.make ~disabled:(T.pass_names full) C.Gcc C.O2 in
  let q_full = E.product prepared full in
  let q_none = E.product prepared none in
  Alcotest.(check bool) "no passes -> more debuggable" true (q_none >= q_full)

let test_measure_reuse_discard_optimization () =
  let prepared = Lazy.force libpng in
  let m, bin = E.measure prepared (C.make C.Gcc C.O2) in
  (* Disabling a pass that does not change .text must reuse the cached
     metrics — simulate with the same config. *)
  let m2, _ =
    E.measure ~reuse:(bin.Emit.text_digest, m) prepared (C.make C.Gcc C.O2)
  in
  Alcotest.(check (float 1e-12)) "identical metrics via reuse"
    m.Metrics.m_hybrid.Metrics.product m2.Metrics.m_hybrid.Metrics.product

let test_ranking_shape () =
  let prepared = [ Lazy.force libpng ] in
  let lr = Debugtuner.Ranking.rank prepared (C.make C.Gcc C.O1) in
  let effects = lr.Debugtuner.Ranking.lr_effects in
  Alcotest.(check bool) "covers all passes" true
    (List.length effects = List.length (T.pass_names (C.make C.Gcc C.O1)));
  (* Ranks ascend. *)
  let rec ascending = function
    | (a : Debugtuner.Ranking.pass_effect) :: (b :: _ as rest) ->
        a.Debugtuner.Ranking.pe_avg_rank <= b.Debugtuner.Ranking.pe_avg_rank
        && ascending rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by avg rank" true (ascending effects)

let test_dy_config_inliner_exception () =
  let prepared = [ Lazy.force libpng ] in
  let lr = Debugtuner.Ranking.rank prepared (C.make C.Gcc C.O2) in
  let cfg = Debugtuner.Tuning.dy_config lr ~y:5 in
  Alcotest.(check int) "5 disabled" 5 (List.length cfg.C.disabled);
  Alcotest.(check bool) "general inliner never disabled" false
    (List.mem "inline" cfg.C.disabled)

let test_dy_configs_nest () =
  let prepared = [ Lazy.force libpng ] in
  let lr = Debugtuner.Ranking.rank prepared (C.make C.Gcc C.O2) in
  let d3 = (Debugtuner.Tuning.dy_config lr ~y:3).C.disabled in
  let d5 = (Debugtuner.Tuning.dy_config lr ~y:5).C.disabled in
  List.iter
    (fun p -> Alcotest.(check bool) "d3 subset of d5" true (List.mem p d5))
    d3

let test_speedups_ordering () =
  let benches = [ Spec.find "505.mcf"; Spec.find "525.x264" ] in
  let o0_costs = Debugtuner.Tuning.o0_costs benches in
  let _, geo_o0 =
    Debugtuner.Tuning.speedups_cached ~o0_costs benches (C.make C.Gcc C.O0)
  in
  let _, geo_o2 =
    Debugtuner.Tuning.speedups_cached ~o0_costs benches (C.make C.Gcc C.O2)
  in
  Alcotest.(check (float 1e-9)) "O0 speedup is 1" 1.0 geo_o0;
  Alcotest.(check bool) "O2 faster than O0" true (geo_o2 > 1.2)

let test_pareto_front () =
  let open Debugtuner.Pareto in
  let pts =
    [
      { pt_name = "a"; pt_debug = 0.9; pt_speedup = 1.0 };
      { pt_name = "b"; pt_debug = 0.5; pt_speedup = 2.0 };
      { pt_name = "dominated"; pt_debug = 0.4; pt_speedup = 1.5 };
      { pt_name = "c"; pt_debug = 0.7; pt_speedup = 1.7 };
    ]
  in
  let opt = List.map (fun p -> p.pt_name) (optimal pts) in
  Alcotest.(check bool) "a optimal" true (List.mem "a" opt);
  Alcotest.(check bool) "b optimal" true (List.mem "b" opt);
  Alcotest.(check bool) "c optimal" true (List.mem "c" opt);
  Alcotest.(check bool) "dominated excluded" false (List.mem "dominated" opt)

let test_compile_deterministic () =
  let p = Programs.find "zlib" in
  let ast = Suite_types.ast p in
  let roots = Suite_types.roots p in
  let a = T.compile ast ~config:(C.make C.Clang C.O2) ~roots in
  let ast2 = Suite_types.ast p in
  let b = T.compile ast2 ~config:(C.make C.Clang C.O2) ~roots in
  Alcotest.(check string) "same digest" a.Emit.text_digest b.Emit.text_digest

let test_pipeline_trace () =
  let p = Programs.find "zlib" in
  let ast = Suite_types.ast p in
  let roots = Suite_types.roots p in
  let trace cfg = Debugtuner.Toolchain.pipeline_trace ast ~config:cfg ~roots in
  (* O0: lowering only. *)
  (match trace (Debugtuner.Config.make Debugtuner.Config.Gcc Debugtuner.Config.O0) with
  | [ ("lower", st) ] ->
      Alcotest.(check bool) "O0 has instructions and lines" true
        (st.Debugtuner.Toolchain.st_instrs > 0
        && st.Debugtuner.Toolchain.st_lines > 0
        && st.Debugtuner.Toolchain.st_bindings = 0)
  | t ->
      Alcotest.fail
        (Printf.sprintf "O0 trace should be [lower], got %d steps"
           (List.length t)));
  (* O2: lower, mem2reg, then one row per executed pass. *)
  let cfg = Debugtuner.Config.make Debugtuner.Config.Gcc Debugtuner.Config.O2 in
  let t = trace cfg in
  (match t with
  | ("lower", l) :: ("mem2reg", m) :: rest ->
      Alcotest.(check bool) "mem2reg removes frame traffic" true
        (m.Debugtuner.Toolchain.st_instrs < l.Debugtuner.Toolchain.st_instrs);
      Alcotest.(check bool) "mem2reg introduces bindings" true
        (m.Debugtuner.Toolchain.st_bindings > 0);
      Alcotest.(check bool) "pipeline steps follow" true (rest <> []);
      let names = Debugtuner.Toolchain.pass_names cfg in
      List.iter
        (fun (name, (st : Debugtuner.Toolchain.ir_stats)) ->
          let base =
            match String.index_opt name ' ' with
            | Some i -> String.sub name 0 i
            | None -> name
          in
          Alcotest.(check bool) (base ^ " is a pipeline pass") true
            (List.mem base names);
          Alcotest.(check bool) (name ^ " stats sane") true
            (st.Debugtuner.Toolchain.st_instrs >= 0
            && st.Debugtuner.Toolchain.st_blocks > 0
            && st.Debugtuner.Toolchain.st_lines >= 0))
        rest
  | _ -> Alcotest.fail "O2 trace must start with lower; mem2reg");
  (* A disabled pass leaves no row. *)
  let disabled =
    trace { cfg with Debugtuner.Config.disabled = [ "tree-ter" ] }
  in
  Alcotest.(check bool) "disabled pass not traced" false
    (List.exists (fun (n, _) -> n = "tree-ter") disabled)

let test_pareto_unit () =
  let p name d sp = { Debugtuner.Pareto.pt_name = name; pt_debug = d; pt_speedup = sp } in
  let a = p "a" 0.5 2.0 and b = p "b" 0.4 1.9 and c = p "c" 0.6 1.5 in
  Alcotest.(check bool) "a dominates b" true (Debugtuner.Pareto.dominates a b);
  Alcotest.(check bool) "a does not dominate c" false
    (Debugtuner.Pareto.dominates a c);
  Alcotest.(check bool) "no self-domination" false
    (Debugtuner.Pareto.dominates a a);
  let opt = Debugtuner.Pareto.optimal [ a; b; c ] in
  Alcotest.(check (list string)) "front sorted by debuggability"
    [ "a"; "c" ]
    (List.map (fun q -> q.Debugtuner.Pareto.pt_name) opt)

let qcheck_pareto_front_sound =
  QCheck.Test.make ~name:"pareto front = undominated points" ~count:200
    QCheck.(
      list_of_size (Gen.int_range 1 12)
        (pair (float_range 0.0 1.0) (float_range 1.0 3.0)))
    (fun raw ->
      let pts =
        List.mapi
          (fun i (d, s) ->
            { Debugtuner.Pareto.pt_name = string_of_int i; pt_debug = d; pt_speedup = s })
          raw
      in
      List.for_all
        (fun (q, flag) ->
          flag
          = not
              (List.exists
                 (fun other -> Debugtuner.Pareto.dominates other q)
                 pts))
        (Debugtuner.Pareto.front pts))

let tests =
  [
    Alcotest.test_case "pipeline trace" `Quick test_pipeline_trace;
    Alcotest.test_case "pareto basics" `Quick test_pareto_unit;
    QCheck_alcotest.to_alcotest qcheck_pareto_front_sound;
    Alcotest.test_case "config names" `Quick test_config_names;
    Alcotest.test_case "pipelines grow" `Quick test_pipelines_grow_with_level;
    Alcotest.test_case "paper pass names" `Quick test_paper_pass_names_present;
    Alcotest.test_case "disabling changes .text" `Quick
      test_disabling_pass_changes_or_keeps_binary;
    Alcotest.test_case "disable-all weak but debuggable" `Quick
      test_disable_all_is_weak;
    Alcotest.test_case "discard optimization" `Quick
      test_measure_reuse_discard_optimization;
    Alcotest.test_case "ranking shape" `Quick test_ranking_shape;
    Alcotest.test_case "dy inliner exception" `Quick test_dy_config_inliner_exception;
    Alcotest.test_case "dy configs nest" `Quick test_dy_configs_nest;
    Alcotest.test_case "speedups ordering" `Quick test_speedups_ordering;
    Alcotest.test_case "pareto front" `Quick test_pareto_front;
    Alcotest.test_case "compile deterministic" `Quick test_compile_deterministic;
  ]
