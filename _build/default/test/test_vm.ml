(** Tests for the VM: semantics, cost model monotonicity, I/O, budget,
    coverage and sampling instrumentation. *)

module C = Debugtuner.Config
module T = Debugtuner.Toolchain

let compile ?(config = C.make C.Gcc C.O0) src roots =
  T.compile_source src ~config ~roots

let test_arith_program () =
  let bin =
    compile
      "int main() {\n\
       output(7 / 2);\n\
       output(-7 / 2);\n\
       output(7 % 3);\n\
       output(5 / 0);\n\
       output(5 % 0);\n\
       output(1 << 4);\n\
       output(-16 >> 2);\n\
       output(6 & 3);\n\
       output(6 | 3);\n\
       output(6 ^ 3);\n\
       return 0;\n\
       }"
      [ "main" ]
  in
  let r = Vm.run bin ~entry:"main" ~input:[] Vm.default_opts in
  Alcotest.(check (list int)) "arith"
    [ 3; -3; 1; 0; 0; 16; -4; 2; 7; 5 ]
    r.Vm.output

let test_short_circuit_effects () =
  (* && must not evaluate the rhs when lhs is false: rhs consumes
     input. *)
  let bin =
    compile
      "int take() { return input(); }\n\
       int main() {\n\
       int a = 0;\n\
       if (a && take()) {\n\
       output(-1);\n\
       }\n\
       output(input());\n\
       return 0;\n\
       }"
      [ "main" ]
  in
  let r = Vm.run bin ~entry:"main" ~input:[ 42; 43 ] Vm.default_opts in
  Alcotest.(check (list int)) "rhs skipped" [ 42 ] r.Vm.output

let test_input_eof () =
  let bin =
    compile
      "int main() {\n\
       while (!eof()) {\n\
       output(input() * 2);\n\
       }\n\
       output(input());\n\
       output(eof());\n\
       return 0;\n\
       }"
      [ "main" ]
  in
  let r = Vm.run bin ~entry:"main" ~input:[ 1; 2; 3 ] Vm.default_opts in
  Alcotest.(check (list int)) "doubles then zero-at-eof" [ 2; 4; 6; 0; 1 ]
    r.Vm.output

let test_array_wrapping () =
  (* Out-of-range indices wrap modulo the array size (total semantics,
     matching O0 and optimized builds alike). *)
  let bin =
    compile
      "int a[4];\n\
       int main() {\n\
       a[5] = 99;\n\
       output(a[1]);\n\
       a[-1] = 7;\n\
       output(a[3]);\n\
       return 0;\n\
       }"
      [ "main" ]
  in
  let r = Vm.run bin ~entry:"main" ~input:[] Vm.default_opts in
  Alcotest.(check (list int)) "wrapped" [ 99; 7 ] r.Vm.output

let test_recursion_and_frames () =
  let bin =
    compile
      "int fib(int n) {\n\
       if (n < 2) {\n\
       return n;\n\
       }\n\
       return fib(n - 1) + fib(n - 2);\n\
       }\n\
       int main() { output(fib(12)); return 0; }"
      [ "main" ]
  in
  let r = Vm.run bin ~entry:"main" ~input:[] Vm.default_opts in
  Alcotest.(check (list int)) "fib 12" [ 144 ] r.Vm.output

let test_globals_persist_across_calls () =
  let bin =
    compile
      "int counter;\n\
       int bump() { counter = counter + 1; return counter; }\n\
       int main() { bump(); bump(); output(bump()); return 0; }"
      [ "main" ]
  in
  let r = Vm.run bin ~entry:"main" ~input:[] Vm.default_opts in
  Alcotest.(check (list int)) "global state" [ 3 ] r.Vm.output

let test_frames_isolated () =
  (* Each call gets fresh zeroed locals. *)
  let bin =
    compile
      "int f() { int local[2]; local[0] = local[0] + 5; return local[0]; }\n\
       int main() { output(f()); output(f()); return 0; }"
      [ "main" ]
  in
  let r = Vm.run bin ~entry:"main" ~input:[] Vm.default_opts in
  Alcotest.(check (list int)) "fresh frames" [ 5; 5 ] r.Vm.output

let test_budget_exhaustion () =
  let bin =
    compile "int main() { while (1) { } return 0; }" [ "main" ]
  in
  let r =
    Vm.run bin ~entry:"main" ~input:[] { Vm.default_opts with max_instrs = 5000 }
  in
  Alcotest.(check bool) "timed out" true r.Vm.timed_out

let test_cost_scales_with_work () =
  let bin =
    compile
      "int main() {\n\
       int n = input();\n\
       int i = 0;\n\
       int s = 0;\n\
       while (i < n) {\n\
       s = s + i;\n\
       i = i + 1;\n\
       }\n\
       output(s);\n\
       return 0;\n\
       }"
      [ "main" ]
  in
  let cost n = (Vm.run bin ~entry:"main" ~input:[ n ] Vm.default_opts).Vm.cost in
  Alcotest.(check bool) "more iterations cost more" true (cost 100 > cost 10);
  Alcotest.(check bool) "roughly linear" true
    (cost 200 - cost 100 > (cost 100 - cost 10) / 2)

let test_optimized_is_cheaper () =
  let src = (Spec.find "505.mcf").Suite_types.p_source in
  let o0 = compile src [ "main" ] in
  let o2 = compile ~config:(C.make C.Gcc C.O2) src [ "main" ] in
  let c0 = (Vm.run o0 ~entry:"main" ~input:[] Vm.default_opts).Vm.cost in
  let c2 = (Vm.run o2 ~entry:"main" ~input:[] Vm.default_opts).Vm.cost in
  Alcotest.(check bool) "O2 at least 1.5x faster than O0" true
    (float_of_int c0 /. float_of_int c2 > 1.5)

let test_coverage_edges () =
  let bin =
    compile
      "int main() {\n\
       int i = 0;\n\
       while (i < 3) {\n\
       i = i + 1;\n\
       }\n\
       return 0;\n\
       }"
      [ "main" ]
  in
  let r =
    Vm.run bin ~entry:"main" ~input:[] { Vm.default_opts with coverage = true }
  in
  Alcotest.(check bool) "edges recorded" true (Hashtbl.length r.Vm.edges > 0)

let test_sampling_density () =
  let src = (Spec.find "541.leela").Suite_types.p_source in
  let bin = compile src [ "main" ] in
  let r =
    Vm.run bin ~entry:"main" ~input:[]
      { Vm.default_opts with sample_period = Some 997 }
  in
  let expected = r.Vm.cost / 997 in
  let got = List.length r.Vm.samples in
  Alcotest.(check bool)
    (Printf.sprintf "sample count ~ cost/period (%d vs %d)" got expected)
    true
    (got > expected / 2 && got < 2 * expected);
  (* All samples are valid addresses. *)
  List.iter
    (fun a ->
      Alcotest.(check bool) "addr valid" true
        (a >= 0 && a < Array.length bin.Emit.code))
    r.Vm.samples

let test_sampling_deterministic () =
  let src = (Spec.find "557.xz").Suite_types.p_source in
  let bin = compile src [ "main" ] in
  let go () =
    (Vm.run bin ~entry:"main" ~input:[]
       { Vm.default_opts with sample_period = Some 499; seed = 5 })
      .Vm.samples
  in
  Alcotest.(check (list int)) "same samples" (go ()) (go ())

let test_breakpoints_first_hit_only () =
  let bin =
    compile
      "int main() {\n\
       int i = 0;\n\
       while (i < 5) {\n\
       i = i + 1;\n\
       }\n\
       output(i);\n\
       return 0;\n\
       }"
      [ "main" ]
  in
  let bps = Array.make (Array.length bin.Emit.code) true in
  let r =
    Vm.run bin ~entry:"main" ~input:[]
      { Vm.default_opts with breakpoints = Some bps }
  in
  let sorted = List.sort_uniq compare r.Vm.bp_hits in
  Alcotest.(check int) "each address at most once" (List.length r.Vm.bp_hits)
    (List.length sorted)

let qcheck_vm_determinism =
  QCheck.Test.make ~name:"vm runs are deterministic" ~count:20
    QCheck.(pair (int_range 1 30_000) (small_list small_int))
    (fun (seed, input) ->
      let src = Synth.generate ~seed in
      let bin = T.compile_source src ~config:(C.make C.Gcc C.O1) ~roots:[ "main" ] in
      let r1 = Vm.run bin ~entry:"main" ~input Vm.default_opts in
      let r2 = Vm.run bin ~entry:"main" ~input Vm.default_opts in
      r1.Vm.output = r2.Vm.output && r1.Vm.cost = r2.Vm.cost)

let tests =
  [
    Alcotest.test_case "arithmetic semantics" `Quick test_arith_program;
    Alcotest.test_case "short circuit effects" `Quick test_short_circuit_effects;
    Alcotest.test_case "input/eof" `Quick test_input_eof;
    Alcotest.test_case "array wrapping" `Quick test_array_wrapping;
    Alcotest.test_case "recursion and frames" `Quick test_recursion_and_frames;
    Alcotest.test_case "globals persist" `Quick test_globals_persist_across_calls;
    Alcotest.test_case "frames isolated" `Quick test_frames_isolated;
    Alcotest.test_case "budget exhaustion" `Quick test_budget_exhaustion;
    Alcotest.test_case "cost scales with work" `Quick test_cost_scales_with_work;
    Alcotest.test_case "optimized is cheaper" `Quick test_optimized_is_cheaper;
    Alcotest.test_case "coverage edges" `Quick test_coverage_edges;
    Alcotest.test_case "sampling density" `Quick test_sampling_density;
    Alcotest.test_case "sampling deterministic" `Quick test_sampling_deterministic;
    Alcotest.test_case "breakpoints first hit" `Quick test_breakpoints_first_hit_only;
    QCheck_alcotest.to_alcotest qcheck_vm_determinism;
  ]
