(** Tests for the JSON trace export (paper Section III-C) and offline
    trace comparison. *)

module C = Debugtuner.Config
module T = Debugtuner.Toolchain

let make_trace cfg =
  let p = Programs.find "zlib" in
  let ast = Suite_types.ast p in
  let bin = T.compile ast ~config:cfg ~roots:(Suite_types.roots p) in
  Debugger.trace bin ~entry:"fuzz_deflate" ~inputs:[ [ 1; 2; 3; 1; 2; 3 ] ]

let trace_equal (a : Debugger.trace) (b : Debugger.trace) =
  List.sort compare a.Debugger.steppable = List.sort compare b.Debugger.steppable
  && a.Debugger.hit_order = b.Debugger.hit_order
  && Hashtbl.length a.Debugger.stepped = Hashtbl.length b.Debugger.stepped
  && Hashtbl.fold
       (fun line vars acc ->
         acc
         &&
         match Hashtbl.find_opt b.Debugger.stepped line with
         | Some vb -> Debugger.Var_set.equal vars vb
         | None -> false)
       a.Debugger.stepped true

let test_roundtrip () =
  let t = make_trace (C.make C.Gcc C.O2) in
  let t' = Trace_json.of_string (Trace_json.to_string t) in
  Alcotest.(check bool) "roundtrip preserves the trace" true (trace_equal t t')

let test_canonical_output () =
  let t = make_trace (C.make C.Gcc C.O2) in
  Alcotest.(check string) "serialization is canonical"
    (Trace_json.to_string t)
    (Trace_json.to_string (Trace_json.of_string (Trace_json.to_string t)))

let test_escape () =
  Alcotest.(check string) "quotes escaped" "a\\\"b" (Trace_json.escape "a\"b");
  Alcotest.(check string) "backslash escaped" "a\\\\b" (Trace_json.escape "a\\b")

let test_parse_errors () =
  List.iter
    (fun s ->
      match Trace_json.of_string s with
      | exception Trace_json.Parse_error _ -> ()
      | _ -> Alcotest.fail ("should reject: " ^ s))
    [ "{"; "[1,2"; "{\"wrong\": 1}"; "{\"steppable\": [1,]}" ]

let test_compare_traces () =
  let o0 = make_trace (C.make C.Gcc C.O0) in
  let o3 = make_trace (C.make C.Gcc C.O3) in
  let d = Trace_json.compare_traces o0 o3 in
  (* Optimization can only lose relative to O0 here. *)
  Alcotest.(check (list int)) "nothing gained over O0" [] d.Trace_json.lines_gained;
  Alcotest.(check bool) "something lost at O3" true
    (d.Trace_json.lines_lost <> [] || d.Trace_json.vars_lost <> []);
  let self = Trace_json.compare_traces o0 o0 in
  Alcotest.(check bool) "self-diff empty" true
    (self.Trace_json.lines_lost = []
    && self.Trace_json.lines_gained = []
    && self.Trace_json.vars_lost = [])

let qcheck_roundtrip_random_programs =
  QCheck.Test.make ~name:"json roundtrip on random traces" ~count:15
    QCheck.(int_range 1 20_000)
    (fun seed ->
      let src = Synth.generate ~seed in
      let ast = Minic.Typecheck.parse_and_check src in
      let bin = T.compile ast ~config:(C.make C.Clang C.O2) ~roots:[ "main" ] in
      let t = Debugger.trace bin ~entry:"main" ~inputs:[ [] ] in
      trace_equal t (Trace_json.of_string (Trace_json.to_string t)))

let tests =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "canonical output" `Quick test_canonical_output;
    Alcotest.test_case "string escaping" `Quick test_escape;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "compare traces" `Quick test_compare_traces;
    QCheck_alcotest.to_alcotest qcheck_roundtrip_random_programs;
  ]
