(** Randomized structural properties of the core analyses — dominators,
    dominance frontiers, liveness, natural loops — checked over the IR
    of random synthetic programs *after* the optimization pipeline has
    reshaped the CFG (threading, rotation, unrolling and if-conversion
    produce far gnarlier graphs than any hand-written fixture). The
    dominator check compares the CHK implementation against an
    independent naive dataflow solver. *)

module C = Debugtuner.Config
module T = Debugtuner.Toolchain

(* Lower a random program and run the gcc IR pipeline at [level],
   mirroring Toolchain.compile's IR phase, then hand back the
   functions. *)
let optimized_funcs ~seed ~level =
  let src = Synth.generate ~seed in
  let ast = Minic.Typecheck.parse_and_check src in
  let prog = Lower.lower_program ast in
  let config = C.make C.Gcc level in
  let env =
    {
      T.prog;
      roots = [ "main" ];
      pure = (fun _ -> false);
      profile = None;
      enabled = C.enabled config;
    }
  in
  if level <> C.O0 then begin
    Hashtbl.iter (fun _ fn -> Mem2reg.run fn) prog.Ir.funcs;
    Cleanup.run_program prog;
    List.iter
      (fun e ->
        match e with
        | T.Ir_pass (name, f) when C.enabled config name ->
            f env;
            Cleanup.run_program prog
        | T.Ir_pass _ | T.Backend_flag _ -> ())
      (T.pipeline config)
  end;
  Hashtbl.fold (fun _ fn acc -> fn :: acc) prog.Ir.funcs []

let levels = [| C.O0; C.O1; C.O2; C.O3 |]

let arb_fn_seed =
  QCheck.(pair (int_range 1 50_000) (int_range 0 3))

(* ------------------------------------------------------------------ *)
(* Naive dominator reference: dom(b) = {b} ∪ ∩ dom(preds), iterated.   *)

module Label_set = Set.Make (Int)

let naive_dominators (fn : Ir.fn) =
  Ir.recompute_preds fn;
  let reach = Ir.rpo fn in
  let all = Label_set.of_list reach in
  let dom = Hashtbl.create 16 in
  List.iter
    (fun l ->
      Hashtbl.replace dom l
        (if l = fn.Ir.entry then Label_set.singleton l else all))
    reach;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        if l <> fn.Ir.entry then begin
          let preds =
            List.filter (fun p -> Hashtbl.mem dom p) (Ir.block fn l).Ir.preds
          in
          let meet =
            match preds with
            | [] -> all
            | p :: rest ->
                List.fold_left
                  (fun acc q -> Label_set.inter acc (Hashtbl.find dom q))
                  (Hashtbl.find dom p) rest
          in
          let next = Label_set.add l meet in
          if not (Label_set.equal next (Hashtbl.find dom l)) then begin
            Hashtbl.replace dom l next;
            changed := true
          end
        end)
      reach
  done;
  dom

let qcheck_dominators_vs_naive =
  QCheck.Test.make ~name:"CHK dominators agree with the naive solver"
    ~count:40 arb_fn_seed (fun (seed, li) ->
      List.for_all
        (fun fn ->
          let t = Dom.compute fn in
          let naive = naive_dominators fn in
          let reach = Ir.rpo fn in
          List.for_all
            (fun a ->
              List.for_all
                (fun b ->
                  Dom.dominates t a b
                  = Label_set.mem a (Hashtbl.find naive b))
                reach)
            reach)
        (optimized_funcs ~seed ~level:levels.(li)))

let qcheck_idom_is_strict_dominator =
  QCheck.Test.make ~name:"idom strictly dominates (and entry is root)"
    ~count:40 arb_fn_seed (fun (seed, li) ->
      List.for_all
        (fun fn ->
          let t = Dom.compute fn in
          List.for_all
            (fun l ->
              if l = fn.Ir.entry then Dom.idom t l = Some l || Dom.idom t l = None
              else
                match Dom.idom t l with
                | Some p -> p <> l && Dom.dominates t p l
                | None -> false)
            (Ir.rpo fn))
        (optimized_funcs ~seed ~level:levels.(li)))

(* DF(b) contains exactly the "just out of reach" blocks: b dominates a
   predecessor of f but does not strictly dominate f itself. *)
let qcheck_dominance_frontier =
  QCheck.Test.make ~name:"dominance-frontier characterization" ~count:25
    arb_fn_seed (fun (seed, li) ->
      List.for_all
        (fun fn ->
          let t = Dom.compute fn in
          let df = Dom.frontiers fn t in
          Hashtbl.fold
            (fun b frontier ok ->
              ok
              && List.for_all
                   (fun f ->
                     let fb = Ir.block fn f in
                     List.exists
                       (fun p ->
                         Hashtbl.mem t.Dom.idom p && Dom.dominates t b p)
                       fb.Ir.preds
                     && (b = f || not (Dom.dominates t b f)))
                   frontier)
            df true)
        (optimized_funcs ~seed ~level:levels.(li)))

(* ------------------------------------------------------------------ *)
(* Liveness                                                            *)

let qcheck_liveness_entry =
  QCheck.Test.make
    ~name:"nothing but parameters live into the entry block" ~count:40
    arb_fn_seed (fun (seed, li) ->
      List.for_all
        (fun (fn : Ir.fn) ->
          let lv = Liveness.compute fn in
          let params =
            Liveness.Reg_set.of_list (List.map fst fn.Ir.f_params)
          in
          Liveness.Reg_set.subset (Liveness.live_in lv fn.Ir.entry) params)
        (optimized_funcs ~seed ~level:levels.(li)))

let qcheck_liveness_upward_closure =
  QCheck.Test.make
    ~name:"live-out covers successors' live-in (minus their phi defs)"
    ~count:25 arb_fn_seed (fun (seed, li) ->
      List.for_all
        (fun (fn : Ir.fn) ->
          let lv = Liveness.compute fn in
          List.for_all
            (fun l ->
              let b = Ir.block fn l in
              List.for_all
                (fun s ->
                  let sb = Ir.block fn s in
                  let phi_defs =
                    Liveness.Reg_set.of_list
                      (List.map (fun (p : Ir.phi) -> p.Ir.p_dst) sb.Ir.phis)
                  in
                  Liveness.Reg_set.subset
                    (Liveness.Reg_set.diff (Liveness.live_in lv s) phi_defs)
                    (Liveness.live_out lv l))
                (Ir.succs b.Ir.term))
            (Ir.rpo fn))
        (optimized_funcs ~seed ~level:levels.(li)))

(* ------------------------------------------------------------------ *)
(* Natural loops                                                       *)

let qcheck_loops_well_formed =
  QCheck.Test.make
    ~name:"loop headers dominate their bodies; latches close the loop"
    ~count:40 arb_fn_seed (fun (seed, li) ->
      List.for_all
        (fun fn ->
          let t = Dom.compute fn in
          let loops = (Loops.find fn t).Loops.loops in
          List.for_all
            (fun (lp : Loops.loop) ->
              Loops.Label_set.mem lp.Loops.header lp.Loops.body
              && Loops.Label_set.for_all
                   (fun l -> Dom.dominates t lp.Loops.header l)
                   lp.Loops.body
              && lp.Loops.latches <> []
              && List.for_all
                   (fun latch ->
                     Loops.Label_set.mem latch lp.Loops.body
                     && List.mem lp.Loops.header
                          (Ir.succs (Ir.block fn latch).Ir.term))
                   lp.Loops.latches)
            loops)
        (optimized_funcs ~seed ~level:levels.(li)))

let qcheck_loop_depth_nesting =
  QCheck.Test.make
    ~name:"nested loop depth exceeds the enclosing loop's" ~count:25
    arb_fn_seed (fun (seed, li) ->
      List.for_all
        (fun fn ->
          let t = Dom.compute fn in
          let loops = (Loops.find fn t).Loops.loops in
          List.for_all
            (fun (a : Loops.loop) ->
              List.for_all
                (fun (b : Loops.loop) ->
                  (* b strictly inside a -> deeper *)
                  if
                    a.Loops.header <> b.Loops.header
                    && Loops.Label_set.subset b.Loops.body a.Loops.body
                  then b.Loops.depth > a.Loops.depth
                  else true)
                loops)
            loops)
        (optimized_funcs ~seed ~level:levels.(li)))

(* ------------------------------------------------------------------ *)
(* The verifier holds at every stage the properties sampled above      *)

let qcheck_ssa_after_pipeline =
  QCheck.Test.make ~name:"SSA verifier accepts post-pipeline IR" ~count:40
    arb_fn_seed (fun (seed, li) ->
      let fns = optimized_funcs ~seed ~level:levels.(li) in
      List.iter (fun fn -> Verify.check_fn fn) fns;
      true)

(* ------------------------------------------------------------------ *)
(* Arithmetic: totality and the division algebra                       *)

let arb_extreme =
  QCheck.(
    oneof
      [
        int;
        oneofl [ min_int; max_int; 0; 1; -1; 2; -2; 63; 64; -63; -64 ];
      ])

let all_binops =
  [
    Ir.Add; Ir.Sub; Ir.Mul; Ir.Div; Ir.Rem; Ir.And; Ir.Or; Ir.Xor; Ir.Shl;
    Ir.Shr; Ir.Clt; Ir.Cle; Ir.Cgt; Ir.Cge; Ir.Ceq; Ir.Cne;
  ]

let qcheck_binop_total =
  QCheck.Test.make ~name:"eval_binop is total on extreme inputs" ~count:300
    QCheck.(pair arb_extreme arb_extreme)
    (fun (a, b) ->
      List.for_all
        (fun op ->
          match Ir.eval_binop op a b with _ -> true)
        all_binops)

let qcheck_div_rem_algebra =
  QCheck.Test.make ~name:"a = (a/b)*b + a%b when b <> 0" ~count:300
    QCheck.(pair arb_extreme arb_extreme)
    (fun (a, b) ->
      QCheck.assume (b <> 0);
      (* min_int / -1 overflows in two's complement; our semantics
         saturate it to min_int * -1 = min_int, keeping the identity. *)
      Ir.eval_binop Ir.Add
        (Ir.eval_binop Ir.Mul (Ir.eval_binop Ir.Div a b) b)
        (Ir.eval_binop Ir.Rem a b)
      = a)

let qcheck_comparison_coherence =
  QCheck.Test.make ~name:"comparisons are coherent" ~count:300
    QCheck.(pair arb_extreme arb_extreme)
    (fun (a, b) ->
      let v op = Ir.eval_binop op a b = 1 in
      v Ir.Cle = (v Ir.Clt || v Ir.Ceq)
      && v Ir.Cge = (v Ir.Cgt || v Ir.Ceq)
      && v Ir.Cne = not (v Ir.Ceq)
      && not (v Ir.Clt && v Ir.Cgt))

(* ------------------------------------------------------------------ *)
(* Debug-info shape invariants on emitted binaries                     *)

let qcheck_line_table_shape =
  QCheck.Test.make
    ~name:"steppable lines sorted/unique; breakpoints at lowest address"
    ~count:20
    QCheck.(int_range 1 50_000)
    (fun seed ->
      let src = Synth.generate ~seed in
      let ast = Minic.Typecheck.parse_and_check src in
      let bin = T.compile ast ~config:(C.make C.Clang C.O2) ~roots:[ "main" ] in
      let lines = Dwarfish.steppable_lines bin.Emit.debug in
      let rec sorted_unique = function
        | a :: (b :: _ as rest) -> a < b && sorted_unique rest
        | _ -> true
      in
      sorted_unique lines
      && List.for_all
           (fun (line, addr) ->
             List.for_all
               (fun (e : Dwarfish.line_entry) ->
                 e.Dwarfish.line <> line || e.Dwarfish.addr >= addr)
               bin.Emit.debug.Dwarfish.line_table)
           (Dwarfish.breakpoint_addrs bin.Emit.debug))

(* ------------------------------------------------------------------ *)
(* Frontend: the pretty-printer emits valid MiniC with the same meaning *)

let qcheck_pretty_roundtrip =
  QCheck.Test.make
    ~name:"pretty-print/parse roundtrip is a semantic identity" ~count:30
    QCheck.(int_range 1 50_000)
    (fun seed ->
      let src = Synth.generate ~seed in
      let ast = Minic.Typecheck.parse_and_check src in
      let printed = Minic.Pretty.program_to_string ast in
      let ast2 = Minic.Typecheck.parse_and_check printed in
      Minic.Pretty.program_to_string ast2 = printed
      && Minic.Interp.run ast ~entry:"main" ~input:[]
         = Minic.Interp.run ast2 ~entry:"main" ~input:[])

let tests =
  List.map QCheck_alcotest.to_alcotest
    [
      qcheck_pretty_roundtrip;
      qcheck_dominators_vs_naive;
      qcheck_idom_is_strict_dominator;
      qcheck_dominance_frontier;
      qcheck_liveness_entry;
      qcheck_liveness_upward_closure;
      qcheck_loops_well_formed;
      qcheck_loop_depth_nesting;
      qcheck_ssa_after_pipeline;
      qcheck_binop_total;
      qcheck_div_rem_algebra;
      qcheck_comparison_coherence;
      qcheck_line_table_shape;
    ]
