(** The three-way differential oracle: the AST interpreter (a reference
    semantics independent of IR/backend/VM), the O0 build, and optimized
    builds must all agree — on the hand-written suite and on random
    synthetic programs with random inputs. *)

module C = Debugtuner.Config
module T = Debugtuner.Toolchain

let run_vm ast cfg roots ~entry ~input =
  let bin = T.compile ast ~config:cfg ~roots in
  (Vm.run bin ~entry ~input Vm.default_opts).Vm.output

let test_interp_basics () =
  let p =
    Minic.Typecheck.parse_and_check
      "int fact(int n) { if (n < 2) { return 1; } return n * fact(n - 1); }\n\
       int main() { output(fact(6)); output(input() + input()); return 0; }"
  in
  Alcotest.(check (list int)) "interp" [ 720; 30 ]
    (Minic.Interp.run p ~entry:"main" ~input:[ 10; 20 ])

let test_interp_scoping () =
  let p =
    Minic.Typecheck.parse_and_check
      "int main() {\n\
       int x = 1;\n\
       if (x) {\n\
       int y = 10;\n\
       x = x + y;\n\
       }\n\
       for (int i = 0; i < 3; i = i + 1) {\n\
       x = x + i;\n\
       }\n\
       output(x);\n\
       return 0;\n\
       }"
  in
  Alcotest.(check (list int)) "scopes" [ 14 ]
    (Minic.Interp.run p ~entry:"main" ~input:[])

let test_interp_break_continue () =
  let p =
    Minic.Typecheck.parse_and_check
      "int main() {\n\
       int s = 0;\n\
       for (int i = 0; i < 10; i = i + 1) {\n\
       if (i == 2) { continue; }\n\
       if (i == 5) { break; }\n\
       s = s + i;\n\
       }\n\
       output(s);\n\
       return 0;\n\
       }"
  in
  (* 0+1+3+4 = 8 *)
  Alcotest.(check (list int)) "break/continue" [ 8 ]
    (Minic.Interp.run p ~entry:"main" ~input:[])

let test_interp_step_limit () =
  let p = Minic.Typecheck.parse_and_check "int main() { while (1) { } return 0; }" in
  match Minic.Interp.run ~max_steps:1000 p ~entry:"main" ~input:[] with
  | exception Minic.Interp.Step_limit -> ()
  | _ -> Alcotest.fail "expected step limit"

let test_interp_matches_vm_on_suite () =
  List.iter
    (fun (p : Suite_types.sprogram) ->
      let ast = Suite_types.ast p in
      let roots = Suite_types.roots p in
      List.iter
        (fun (h : Suite_types.harness) ->
          List.iter
            (fun input ->
              let reference =
                Minic.Interp.run ast ~entry:h.Suite_types.h_entry ~input
              in
              List.iter
                (fun cfg ->
                  Alcotest.(check (list int))
                    (Printf.sprintf "%s %s %s" p.Suite_types.p_name
                       h.Suite_types.h_name (C.name cfg))
                    reference
                    (run_vm ast cfg roots ~entry:h.Suite_types.h_entry ~input))
                [ C.make C.Gcc C.O0; C.make C.Gcc C.O3; C.make C.Clang C.O3 ])
            h.Suite_types.h_seeds)
        p.Suite_types.p_harnesses)
    Programs.all

let qcheck_three_way =
  QCheck.Test.make
    ~name:"interpreter, O0 and O2 agree on random programs and inputs"
    ~count:25
    QCheck.(pair (int_range 1 60_000) (small_list small_int))
    (fun (seed, input) ->
      let src = Synth.generate ~seed in
      let ast = Minic.Typecheck.parse_and_check src in
      let reference = Minic.Interp.run ast ~entry:"main" ~input in
      let o0 = run_vm ast (C.make C.Gcc C.O0) [ "main" ] ~entry:"main" ~input in
      let o2g = run_vm ast (C.make C.Gcc C.O2) [ "main" ] ~entry:"main" ~input in
      let o2c = run_vm ast (C.make C.Clang C.O2) [ "main" ] ~entry:"main" ~input in
      reference = o0 && reference = o2g && reference = o2c)

let tests =
  [
    Alcotest.test_case "interp basics" `Quick test_interp_basics;
    Alcotest.test_case "interp scoping" `Quick test_interp_scoping;
    Alcotest.test_case "interp break/continue" `Quick test_interp_break_continue;
    Alcotest.test_case "interp step limit" `Quick test_interp_step_limit;
    Alcotest.test_case "interp = VM on suite" `Quick test_interp_matches_vm_on_suite;
    QCheck_alcotest.to_alcotest qcheck_three_way;
  ]
