lib/fuzz/trace_prune.ml: Debugger Emit Hashtbl List
