lib/fuzz/fuzzer.ml: Array Emit Hashtbl List Util Vm
