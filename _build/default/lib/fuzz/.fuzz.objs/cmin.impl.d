lib/fuzz/cmin.ml: Emit Fuzzer Hashtbl List
