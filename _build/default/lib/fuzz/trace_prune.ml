(** Debug-trace pruning (Section IV): after [afl-cmin]-style
    minimization, drop inputs that step no source line not already
    stepped by inputs processed before them. Inputs with the most unique
    stepped lines go first — the paper's fast set-cover approximation. *)

let prune (bin : Emit.binary) ~entry (corpus : int list list) =
  let with_lines =
    List.map
      (fun input ->
        let t = Debugger.trace bin ~entry ~inputs:[ input ] in
        (input, Debugger.stepped_lines t))
      corpus
  in
  let sorted =
    List.sort
      (fun (_, a) (_, b) -> compare (List.length b) (List.length a))
      with_lines
  in
  let covered = Hashtbl.create 256 in
  List.filter_map
    (fun (input, lines) ->
      let adds = List.exists (fun l -> not (Hashtbl.mem covered l)) lines in
      if adds then begin
        List.iter (fun l -> Hashtbl.replace covered l ()) lines;
        Some input
      end
      else None)
    sorted
