(** Coverage-preserving corpus minimization — the [afl-cmin] analog.

    Greedy set cover over edge coverage: process inputs by decreasing
    coverage, keep an input only if it contributes an edge not yet
    covered by the kept set. The kept subset covers exactly the same
    edges as the full corpus. *)

type stats = { kept : int list list; original : int; reduction_pct : float }

let minimize (bin : Emit.binary) ~entry (corpus : int list list) : stats =
  let with_cov =
    List.map
      (fun input ->
        let res = Fuzzer.run_input bin ~entry input in
        (input, Fuzzer.edges_of res))
      corpus
  in
  let sorted =
    List.sort
      (fun (_, a) (_, b) -> compare (List.length b) (List.length a))
      with_cov
  in
  let covered = Hashtbl.create 1024 in
  let kept =
    List.filter_map
      (fun (input, edges) ->
        let adds = List.exists (fun e -> not (Hashtbl.mem covered e)) edges in
        if adds then begin
          List.iter (fun e -> Hashtbl.replace covered e ()) edges;
          Some input
        end
        else None)
      sorted
  in
  let original = List.length corpus in
  let reduction =
    if original = 0 then 0.0
    else
      float_of_int (original - List.length kept)
      /. float_of_int original *. 100.0
  in
  { kept; original; reduction_pct = reduction }
