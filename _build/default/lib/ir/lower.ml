(** Lowering from the MiniC AST to the IR.

    The result is the "O0 shape": every named variable lives in a frame
    slot, every access is an explicit load or store, short-circuit
    operators become control flow merging through anonymous slots, and
    every instruction carries the source line of the expression it came
    from. Virtual registers are single-assignment by construction (all
    merges go through slots), so {!Mem2reg} turns the function into
    proper SSA. *)

open Minic.Ast

type env = {
  fn : Ir.fn;
  slots : (string, Ir.slot) Hashtbl.t;  (** local name -> slot *)
  globals : (string, int) Hashtbl.t;  (** global name -> size *)
  mutable cur : Ir.block;
  mutable loop_stack : (Ir.label * Ir.label) list;
      (** (break target, continue target) *)
  mutable terminated : bool;
}

let emit env ~line ik =
  if not env.terminated then
    env.cur.Ir.instrs <- env.cur.Ir.instrs @ [ { Ir.ik; line = Some line } ]

let set_term env ~line t =
  if not env.terminated then begin
    env.cur.Ir.term <- t;
    env.cur.Ir.term_line <- Some line;
    env.terminated <- true
  end

let switch_to env b =
  env.cur <- b;
  env.terminated <- false

let binop_of_ast : Minic.Ast.binop -> Ir.binop = function
  | Add -> Ir.Add
  | Sub -> Ir.Sub
  | Mul -> Ir.Mul
  | Div -> Ir.Div
  | Rem -> Ir.Rem
  | Band -> Ir.And
  | Bor -> Ir.Or
  | Bxor -> Ir.Xor
  | Shl -> Ir.Shl
  | Shr -> Ir.Shr
  | Eq -> Ir.Ceq
  | Ne -> Ir.Cne
  | Lt -> Ir.Clt
  | Le -> Ir.Cle
  | Gt -> Ir.Cgt
  | Ge -> Ir.Cge
  | Land | Lor -> invalid_arg "binop_of_ast: short-circuit operator"

let slot_addr (s : Ir.slot) index = { Ir.base = Ir.Slot s.Ir.s_id; index }

let var_addr env name =
  match Hashtbl.find_opt env.slots name with
  | Some s -> slot_addr s (Ir.Imm 0)
  | None -> { Ir.base = Ir.Global name; index = Ir.Imm 0 }

let array_addr env name index =
  match Hashtbl.find_opt env.slots name with
  | Some s -> slot_addr s index
  | None -> { Ir.base = Ir.Global name; index }

let rec lower_expr env (e : expr) : Ir.operand =
  let line = e.eline in
  match e.edesc with
  | Int n -> Ir.Imm n
  | Var name ->
      let r = Ir.fresh_reg env.fn in
      emit env ~line (Ir.Load (r, var_addr env name));
      Ir.Reg r
  | Index (name, idx) ->
      let i = lower_expr env idx in
      let r = Ir.fresh_reg env.fn in
      emit env ~line (Ir.Load (r, array_addr env name i));
      Ir.Reg r
  | Unary (op, a) ->
      let va = lower_expr env a in
      let r = Ir.fresh_reg env.fn in
      let irop =
        match op with Neg -> Ir.Neg | Lnot -> Ir.Lnot | Bnot -> Ir.Bnot
      in
      emit env ~line (Ir.Un (irop, r, va));
      Ir.Reg r
  | Binary ((Land | Lor) as op, a, b) -> lower_short_circuit env ~line op a b
  | Binary (op, a, b) ->
      let va = lower_expr env a in
      let vb = lower_expr env b in
      let r = Ir.fresh_reg env.fn in
      emit env ~line (Ir.Bin (binop_of_ast op, r, va, vb));
      Ir.Reg r
  | Call (f, args) ->
      let vargs = List.map (lower_expr env) args in
      let r = Ir.fresh_reg env.fn in
      emit env ~line (Ir.Call (Some r, f, vargs));
      Ir.Reg r
  | Input ->
      let r = Ir.fresh_reg env.fn in
      emit env ~line (Ir.Input r);
      Ir.Reg r
  | Eof ->
      let r = Ir.fresh_reg env.fn in
      emit env ~line (Ir.Eof r);
      Ir.Reg r

(* [a && b] / [a || b] with C semantics: the result is 0 or 1 and [b] is
   evaluated only when needed. The result merges through an anonymous
   slot, which mem2reg later turns into a phi. *)
and lower_short_circuit env ~line op a b =
  let slot = Ir.fresh_slot env.fn ~size:1 ~var:None ~array:false in
  let addr = slot_addr slot (Ir.Imm 0) in
  let va = lower_expr env a in
  let eval_b = Ir.new_block env.fn in
  let shortcut = Ir.new_block env.fn in
  let join = Ir.new_block env.fn in
  (match op with
  | Land -> set_term env ~line (Ir.Cbr (va, eval_b.Ir.b_label, shortcut.Ir.b_label))
  | Lor -> set_term env ~line (Ir.Cbr (va, shortcut.Ir.b_label, eval_b.Ir.b_label))
  | _ -> assert false);
  switch_to env eval_b;
  let vb = lower_expr env b in
  let norm = Ir.fresh_reg env.fn in
  emit env ~line (Ir.Bin (Ir.Cne, norm, vb, Ir.Imm 0));
  emit env ~line (Ir.Store (addr, Ir.Reg norm));
  set_term env ~line (Ir.Br join.Ir.b_label);
  switch_to env shortcut;
  let const = match op with Land -> 0 | Lor -> 1 | _ -> assert false in
  emit env ~line (Ir.Store (addr, Ir.Imm const));
  set_term env ~line (Ir.Br join.Ir.b_label);
  switch_to env join;
  let r = Ir.fresh_reg env.fn in
  emit env ~line (Ir.Load (r, addr));
  Ir.Reg r

let declare_scalar env ~line name =
  let var = Some { Ir.origin = env.fn.Ir.f_name; name } in
  let s = Ir.fresh_slot env.fn ~size:1 ~var ~array:false in
  Hashtbl.replace env.slots name s;
  ignore line;
  s

let rec lower_stmt env (s : stmt) =
  if env.terminated then ()
  else
    let line = s.sline in
    match s.sdesc with
    | Decl_scalar (name, init) ->
        let value =
          match init with Some e -> lower_expr env e | None -> Ir.Imm 0
        in
        let slot = declare_scalar env ~line name in
        emit env ~line (Ir.Store (slot_addr slot (Ir.Imm 0), value))
    | Decl_array (name, size) ->
        let var = Some { Ir.origin = env.fn.Ir.f_name; name } in
        let slot = Ir.fresh_slot env.fn ~size ~var ~array:true in
        Hashtbl.replace env.slots name slot
    | Assign (name, e) ->
        let v = lower_expr env e in
        emit env ~line (Ir.Store (var_addr env name, v))
    | Assign_index (name, idx, e) ->
        let i = lower_expr env idx in
        let v = lower_expr env e in
        emit env ~line (Ir.Store (array_addr env name i, v))
    | If (cond, then_blk, else_blk) ->
        let vc = lower_expr env cond in
        let then_b = Ir.new_block env.fn in
        let else_b = Ir.new_block env.fn in
        let join = Ir.new_block env.fn in
        set_term env ~line (Ir.Cbr (vc, then_b.Ir.b_label, else_b.Ir.b_label));
        switch_to env then_b;
        lower_block env then_blk;
        set_term env ~line (Ir.Br join.Ir.b_label);
        switch_to env else_b;
        lower_block env else_blk;
        set_term env ~line (Ir.Br join.Ir.b_label);
        switch_to env join
    | While (cond, body) ->
        let header = Ir.new_block env.fn in
        let body_b = Ir.new_block env.fn in
        let exit_b = Ir.new_block env.fn in
        set_term env ~line (Ir.Br header.Ir.b_label);
        switch_to env header;
        let vc = lower_expr env cond in
        set_term env ~line (Ir.Cbr (vc, body_b.Ir.b_label, exit_b.Ir.b_label));
        switch_to env body_b;
        env.loop_stack <- (exit_b.Ir.b_label, header.Ir.b_label) :: env.loop_stack;
        lower_block env body;
        env.loop_stack <- List.tl env.loop_stack;
        set_term env ~line (Ir.Br header.Ir.b_label);
        switch_to env exit_b
    | For (init, cond, step, body) ->
        Option.iter (lower_stmt env) init;
        let header = Ir.new_block env.fn in
        let body_b = Ir.new_block env.fn in
        let step_b = Ir.new_block env.fn in
        let exit_b = Ir.new_block env.fn in
        set_term env ~line (Ir.Br header.Ir.b_label);
        switch_to env header;
        (match cond with
        | Some c ->
            let vc = lower_expr env c in
            set_term env ~line:c.eline
              (Ir.Cbr (vc, body_b.Ir.b_label, exit_b.Ir.b_label))
        | None -> set_term env ~line (Ir.Br body_b.Ir.b_label));
        switch_to env body_b;
        env.loop_stack <-
          (exit_b.Ir.b_label, step_b.Ir.b_label) :: env.loop_stack;
        lower_block env body;
        env.loop_stack <- List.tl env.loop_stack;
        set_term env ~line (Ir.Br step_b.Ir.b_label);
        switch_to env step_b;
        Option.iter (lower_stmt env) step;
        set_term env ~line (Ir.Br header.Ir.b_label);
        switch_to env exit_b
    | Return None -> set_term env ~line (Ir.Ret (Some (Ir.Imm 0)))
    | Return (Some e) ->
        let v = lower_expr env e in
        set_term env ~line (Ir.Ret (Some v))
    | Break -> (
        match env.loop_stack with
        | (brk, _) :: _ -> set_term env ~line (Ir.Br brk)
        | [] -> invalid_arg "Lower: break outside loop")
    | Continue -> (
        match env.loop_stack with
        | (_, cont) :: _ -> set_term env ~line (Ir.Br cont)
        | [] -> invalid_arg "Lower: continue outside loop")
    | Expr e -> (
        match e.edesc with
        | Call (f, args) ->
            let vargs = List.map (lower_expr env) args in
            emit env ~line (Ir.Call (None, f, vargs))
        | _ -> ignore (lower_expr env e))
    | Output e ->
        let v = lower_expr env e in
        emit env ~line (Ir.Output v)

and lower_block env (b : block) = List.iter (lower_stmt env) b.stmts

let lower_fn globals (f : func) =
  let fn = Ir.create_fn ~name:f.fname ~line:f.fline ~params:f.params in
  let env =
    {
      fn;
      slots = Hashtbl.create 16;
      globals;
      cur = Ir.block fn fn.Ir.entry;
      loop_stack = [];
      terminated = false;
    }
  in
  (* Spill parameters to their slots so they are debuggable at O0 and
     promotable by mem2reg. *)
  List.iter
    (fun (r, (v : Ir.var_id)) ->
      let slot = declare_scalar env ~line:f.fline v.Ir.name in
      emit env ~line:f.fline (Ir.Store (slot_addr slot (Ir.Imm 0), Ir.Reg r)))
    fn.Ir.f_params;
  lower_block env f.body;
  (* Fall off the end: return 0. *)
  if not env.terminated then
    set_term env ~line:f.body.end_line (Ir.Ret (Some (Ir.Imm 0)));
  Ir.recompute_preds fn;
  fn

(** [lower_program p] lowers a checked MiniC program to IR. *)
let lower_program (p : program) : Ir.program =
  let globals = Hashtbl.create 16 in
  let global_defs =
    List.map
      (fun g ->
        match g with
        | Gscalar (n, v) ->
            Hashtbl.replace globals n 1;
            { Ir.g_name = n; g_size = 1; g_init = v }
        | Garray (n, size) ->
            Hashtbl.replace globals n size;
            { Ir.g_name = n; g_size = size; g_init = 0 })
      p.globals
  in
  let funcs = Hashtbl.create 16 in
  List.iter
    (fun f -> Hashtbl.replace funcs f.fname (lower_fn globals f))
    p.funcs;
  { Ir.funcs; prog_globals = global_defs }
