(** Structural IR sanity checks, run in tests and (cheaply) between
    passes when the toolchain is built with checking enabled. *)

exception Invalid of string

let failf fmt = Printf.ksprintf (fun m -> raise (Invalid m)) fmt

let check_fn (fn : Ir.fn) =
  (* Validate terminator targets before anything walks successors. *)
  Hashtbl.iter
    (fun l (b : Ir.block) ->
      List.iter
        (fun s ->
          if not (Hashtbl.mem fn.Ir.blocks s) then
            failf "%s: block %d branches to missing block %d" fn.Ir.f_name l s)
        (Ir.succs b.Ir.term))
    fn.Ir.blocks;
  Ir.recompute_preds fn;
  let reachable = Ir.reachable fn in
  (* Layout must contain exactly the blocks in the table, entry first. *)
  (match fn.Ir.layout with
  | e :: _ when e = fn.Ir.entry -> ()
  | _ -> failf "%s: entry is not first in layout" fn.Ir.f_name);
  List.iter
    (fun l ->
      if not (Hashtbl.mem fn.Ir.blocks l) then
        failf "%s: layout mentions missing block %d" fn.Ir.f_name l)
    fn.Ir.layout;
  if List.length fn.Ir.layout <> Hashtbl.length fn.Ir.blocks then
    failf "%s: layout and block table disagree" fn.Ir.f_name;
  let seen_defs = Hashtbl.create 64 in
  List.iter (fun (r, _) -> Hashtbl.replace seen_defs r ()) fn.Ir.f_params;
  Hashtbl.iter
    (fun l (b : Ir.block) ->
      (* Terminator targets exist. *)
      List.iter
        (fun s ->
          if not (Hashtbl.mem fn.Ir.blocks s) then
            failf "%s: block %d branches to missing block %d" fn.Ir.f_name l s)
        (Ir.succs b.Ir.term);
      (* Reachable blocks: each phi has exactly one argument per
         predecessor. *)
      if Hashtbl.mem reachable l then
        List.iter
          (fun (p : Ir.phi) ->
            let arg_labels = List.map fst p.Ir.p_args in
            let sorted_args = List.sort compare arg_labels in
            let sorted_preds = List.sort compare b.Ir.preds in
            if sorted_args <> sorted_preds then
              failf "%s: phi r%d in block %d has args for [%s], preds are [%s]"
                fn.Ir.f_name p.Ir.p_dst l
                (String.concat "," (List.map string_of_int sorted_args))
                (String.concat "," (List.map string_of_int sorted_preds)))
          b.Ir.phis;
      List.iter (fun (p : Ir.phi) -> Hashtbl.replace seen_defs p.Ir.p_dst ()) b.Ir.phis;
      List.iter
        (fun (i : Ir.instr) ->
          List.iter
            (fun d ->
              if Hashtbl.mem seen_defs d then
                failf "%s: register r%d defined more than once" fn.Ir.f_name d;
              Hashtbl.replace seen_defs d ())
            (Ir.def_of_ikind i.Ir.ik))
        b.Ir.instrs)
    fn.Ir.blocks;
  (* Every use has a def somewhere (dominance is not checked — too
     strict for pre-SSA code where merges go through slots). *)
  Hashtbl.iter
    (fun l (b : Ir.block) ->
      if Hashtbl.mem reachable l then begin
        let check_use r =
          if not (Hashtbl.mem seen_defs r) then
            failf "%s: use of undefined register r%d in block %d" fn.Ir.f_name r l
        in
        List.iter
          (fun (p : Ir.phi) ->
            List.iter
              (fun (_, o) -> List.iter check_use (Ir.operand_uses o))
              p.Ir.p_args)
          b.Ir.phis;
        List.iter
          (fun (i : Ir.instr) -> List.iter check_use (Ir.uses_of_ikind i.Ir.ik))
          b.Ir.instrs;
        List.iter check_use (Ir.term_uses b.Ir.term)
      end)
    fn.Ir.blocks

(** [check p] verifies every function; raises {!Invalid} on breakage. *)
let check (p : Ir.program) = Hashtbl.iter (fun _ fn -> check_fn fn) p.Ir.funcs

(** [check_bool p] is [true] when [p] verifies. *)
let check_bool p =
  match check p with () -> true | exception Invalid _ -> false
