lib/ir/lower.ml: Hashtbl Ir List Minic Option
