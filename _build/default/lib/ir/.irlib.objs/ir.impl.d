lib/ir/ir.ml: Arith Array Buffer Hashtbl List Printf String
