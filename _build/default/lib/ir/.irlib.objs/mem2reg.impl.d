lib/ir/mem2reg.ml: Dom Hashtbl Int Ir List Option Set
