lib/ir/liveness.ml: Hashtbl Int Ir List Option Set
