(** Backward liveness analysis over virtual registers.

    Debug bindings ([Dbg]) do not count as uses here: liveness drives
    register allocation and dead-code elimination, and a value kept alive
    only by debug info must not consume a register (this is exactly the
    compiler behaviour that loses variables). *)

module Reg_set = Set.Make (Int)

type t = {
  live_in : (int, Reg_set.t) Hashtbl.t;
  live_out : (int, Reg_set.t) Hashtbl.t;
}

let block_use_def (b : Ir.block) =
  (* use = registers read before any write in the block (phis read in
     predecessors, so their arguments are handled at the edge and their
     destinations count as defs). *)
  let use = ref Reg_set.empty and def = ref Reg_set.empty in
  List.iter (fun (p : Ir.phi) -> def := Reg_set.add p.p_dst !def) b.phis;
  List.iter
    (fun (i : Ir.instr) ->
      List.iter
        (fun r -> if not (Reg_set.mem r !def) then use := Reg_set.add r !use)
        (Ir.real_uses_of_ikind i.ik);
      List.iter (fun r -> def := Reg_set.add r !def) (Ir.def_of_ikind i.ik))
    b.instrs;
  List.iter
    (fun r -> if not (Reg_set.mem r !def) then use := Reg_set.add r !use)
    (Ir.term_uses b.term);
  (!use, !def)

(** Registers a block's successors' phis read along the edge from this
    block. *)
let phi_edge_uses fn from_label =
  let b = Ir.block fn from_label in
  List.concat_map
    (fun s ->
      List.concat_map
        (fun (p : Ir.phi) ->
          List.concat_map
            (fun (l, o) -> if l = from_label then Ir.operand_uses o else [])
            p.p_args)
        (Ir.block fn s).Ir.phis)
    (Ir.succs b.term)

let compute (fn : Ir.fn) =
  Ir.recompute_preds fn;
  let live_in = Hashtbl.create 16 and live_out = Hashtbl.create 16 in
  let labels = Ir.rpo fn in
  List.iter
    (fun l ->
      Hashtbl.replace live_in l Reg_set.empty;
      Hashtbl.replace live_out l Reg_set.empty)
    labels;
  let use_def = Hashtbl.create 16 in
  List.iter
    (fun l -> Hashtbl.replace use_def l (block_use_def (Ir.block fn l)))
    labels;
  let changed = ref true in
  while !changed do
    changed := false;
    (* Iterate in postorder (reverse of RPO) for fast convergence. *)
    List.iter
      (fun l ->
        let b = Ir.block fn l in
        let out =
          List.fold_left
            (fun acc s ->
              let succ_in = Hashtbl.find live_in s in
              (* Remove the successor's phi destinations; add the operands
                 this edge feeds them. *)
              let succ_b = Ir.block fn s in
              let minus_phis =
                List.fold_left
                  (fun acc (p : Ir.phi) -> Reg_set.remove p.p_dst acc)
                  succ_in succ_b.Ir.phis
              in
              let with_edge =
                List.fold_left
                  (fun acc (p : Ir.phi) ->
                    List.fold_left
                      (fun acc (pl, o) ->
                        if pl = l then
                          List.fold_left
                            (fun acc r -> Reg_set.add r acc)
                            acc (Ir.operand_uses o)
                        else acc)
                      acc p.p_args)
                  minus_phis succ_b.Ir.phis
              in
              Reg_set.union acc with_edge)
            Reg_set.empty (Ir.succs b.term)
        in
        let use, def = Hashtbl.find use_def l in
        let inn = Reg_set.union use (Reg_set.diff out def) in
        if
          (not (Reg_set.equal out (Hashtbl.find live_out l)))
          || not (Reg_set.equal inn (Hashtbl.find live_in l))
        then begin
          Hashtbl.replace live_out l out;
          Hashtbl.replace live_in l inn;
          changed := true
        end)
      (List.rev labels)
  done;
  { live_in; live_out }

let live_in t l = Option.value ~default:Reg_set.empty (Hashtbl.find_opt t.live_in l)
let live_out t l = Option.value ~default:Reg_set.empty (Hashtbl.find_opt t.live_out l)
