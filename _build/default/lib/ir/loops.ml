(** Natural-loop detection.

    A back edge is an edge [t -> h] where [h] dominates [t]; the natural
    loop of [h] is [h] plus every block that can reach some latch [t]
    without passing through [h]. Used by LICM, loop rotation, unrolling,
    strength reduction and the branch-probability estimator. *)

module Label_set = Set.Make (Int)

type loop = {
  header : int;
  latches : int list;  (** sources of back edges into [header] *)
  body : Label_set.t;  (** includes the header *)
  depth : int;  (** 1 for outermost *)
}

type t = { loops : loop list; depth_of : (int, int) Hashtbl.t }

let find (fn : Ir.fn) (dom : Dom.t) =
  Ir.recompute_preds fn;
  let back_edges = ref [] in
  List.iter
    (fun l ->
      let b = Ir.block fn l in
      List.iter
        (fun s -> if Dom.dominates dom s l then back_edges := (l, s) :: !back_edges)
        (Ir.succs b.Ir.term))
    dom.Dom.order;
  (* Group back edges by header. *)
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (t, h) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_header h) in
      Hashtbl.replace by_header h (t :: cur))
    !back_edges;
  let natural_loop header latches =
    let body = ref (Label_set.singleton header) in
    let stack = ref latches in
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | l :: rest ->
          stack := rest;
          if not (Label_set.mem l !body) then begin
            body := Label_set.add l !body;
            stack := (Ir.block fn l).Ir.preds @ !stack
          end
    done;
    !body
  in
  let loops =
    Hashtbl.fold
      (fun header latches acc ->
        { header; latches; body = natural_loop header latches; depth = 1 } :: acc)
      by_header []
  in
  (* Nesting depth of a block: number of loop bodies containing it. *)
  let depth_of = Hashtbl.create 16 in
  List.iter
    (fun l ->
      let d =
        List.fold_left
          (fun acc lp -> if Label_set.mem l lp.body then acc + 1 else acc)
          0 loops
      in
      Hashtbl.replace depth_of l d)
    dom.Dom.order;
  let loops =
    List.map
      (fun lp -> { lp with depth = Hashtbl.find depth_of lp.header })
      loops
  in
  (* Deterministic order: by header label. *)
  let loops = List.sort (fun a b -> compare a.header b.header) loops in
  { loops; depth_of }

let depth t l = Option.value ~default:0 (Hashtbl.find_opt t.depth_of l)

(** Blocks outside the loop that branch into its header. *)
let entering (fn : Ir.fn) lp =
  List.filter (fun p -> not (Label_set.mem p lp.body)) (Ir.block fn lp.header).Ir.preds

(** [preheader fn lp] returns the unique outside predecessor of the
    header if it has the header as its only successor; otherwise creates
    one, rerouting outside edges and header phis through it. Returns the
    preheader label. *)
let preheader (fn : Ir.fn) lp =
  let outside = entering fn lp in
  match outside with
  | [ p ] when Ir.succs (Ir.block fn p).Ir.term = [ lp.header ] -> p
  | _ ->
      let ph = Ir.new_block fn in
      ph.Ir.term <- Br lp.header;
      (* Reroute each outside edge to the preheader. *)
      List.iter
        (fun p ->
          let pb = Ir.block fn p in
          let redirect l = if l = lp.header then ph.Ir.b_label else l in
          pb.Ir.term <-
            (match pb.Ir.term with
            | Br l -> Br (redirect l)
            | Cbr (c, l1, l2) -> Cbr (c, redirect l1, redirect l2)
            | Ret _ as t -> t))
        outside;
      (* Split header phis: outside entries move to a phi in the
         preheader. *)
      let header_b = Ir.block fn lp.header in
      List.iter
        (fun (p : Ir.phi) ->
          let outside_args, inside_args =
            List.partition (fun (l, _) -> List.mem l outside) p.p_args
          in
          match outside_args with
          | [] -> ()
          | [ (_, o) ] ->
              p.p_args <- (ph.Ir.b_label, o) :: inside_args
          | _ ->
              let r = Ir.fresh_reg fn in
              ph.Ir.phis <-
                ph.Ir.phis @ [ { Ir.p_dst = r; p_args = outside_args } ];
              p.p_args <- (ph.Ir.b_label, Reg r) :: inside_args)
        header_b.Ir.phis;
      (* Place the preheader just before the header in the layout. *)
      fn.Ir.layout <-
        List.concat_map
          (fun l ->
            if l = lp.header then [ ph.Ir.b_label; l ]
            else if l = ph.Ir.b_label then []
            else [ l ])
          fn.Ir.layout;
      Ir.recompute_preds fn;
      ph.Ir.b_label
