(** Dominator tree and dominance frontiers.

    Implements the Cooper–Harvey–Kennedy iterative algorithm over the
    reverse postorder; simple and fast enough for our function sizes.
    Used by mem2reg (phi placement), GVN and the dominator-based
    optimizations. *)

type t = {
  idom : (int, int) Hashtbl.t;  (** immediate dominator; entry maps to itself *)
  order : int list;  (** reverse postorder of reachable blocks *)
  children : (int, int list) Hashtbl.t;  (** dominator-tree children *)
}

let compute (fn : Ir.fn) =
  Ir.recompute_preds fn;
  let order = Ir.rpo fn in
  let index = Hashtbl.create 16 in
  List.iteri (fun i l -> Hashtbl.replace index l i) order;
  let idom = Hashtbl.create 16 in
  Hashtbl.replace idom fn.Ir.entry fn.Ir.entry;
  let intersect a b =
    (* Walk both fingers up by RPO index until they meet. *)
    let rec go a b =
      if a = b then a
      else
        let ia = Hashtbl.find index a and ib = Hashtbl.find index b in
        if ia > ib then go (Hashtbl.find idom a) b else go a (Hashtbl.find idom b)
    in
    go a b
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        if l <> fn.Ir.entry then begin
          let preds =
            List.filter (fun p -> Hashtbl.mem index p) (Ir.block fn l).Ir.preds
          in
          let processed = List.filter (Hashtbl.mem idom) preds in
          match processed with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if Hashtbl.find_opt idom l <> Some new_idom then begin
                Hashtbl.replace idom l new_idom;
                changed := true
              end
        end)
      order
  done;
  let children = Hashtbl.create 16 in
  List.iter
    (fun l ->
      if l <> fn.Ir.entry then
        match Hashtbl.find_opt idom l with
        | Some p ->
            let existing = Option.value ~default:[] (Hashtbl.find_opt children p) in
            Hashtbl.replace children p (existing @ [ l ])
        | None -> ())
    order;
  { idom; order; children }

let idom t l =
  match Hashtbl.find_opt t.idom l with
  | Some d when d <> l -> Some d
  | _ -> None

let children t l = Option.value ~default:[] (Hashtbl.find_opt t.children l)

(** [dominates t a b] — does [a] dominate [b] (reflexively)? *)
let dominates t a b =
  let rec up l = if l = a then true else match idom t l with Some p -> up p | None -> false in
  up b

(** Dominance frontier of every reachable block (the classic
    runner-to-idom walk from each join point's predecessors). *)
let frontiers (fn : Ir.fn) t =
  let df = Hashtbl.create 16 in
  List.iter (fun l -> Hashtbl.replace df l []) t.order;
  List.iter
    (fun l ->
      match Hashtbl.find_opt t.idom l with
      | None -> ()
      | Some id ->
          let b = Ir.block fn l in
          let preds = List.filter (fun p -> Hashtbl.mem t.idom p) b.Ir.preds in
          if List.length preds >= 2 then
            List.iter
              (fun p ->
                let runner = ref p in
                let continue_walk = ref true in
                while !continue_walk do
                  if !runner = id then continue_walk := false
                  else begin
                    let cur =
                      Option.value ~default:[] (Hashtbl.find_opt df !runner)
                    in
                    if not (List.mem l cur) then
                      Hashtbl.replace df !runner (l :: cur);
                    match Hashtbl.find_opt t.idom !runner with
                    | Some up when up <> !runner -> runner := up
                    | Some _ | None -> continue_walk := false
                  end
                done)
              preds)
    t.order;
  df
