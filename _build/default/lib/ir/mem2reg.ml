(** Promotion of scalar frame slots to SSA registers ("into-ssa").

    This is the always-on stage both pipelines run at O1 and above (in
    clang it is performed by SROA; in gcc by into-ssa — neither compiler
    lets you opt out of SSA form). Promotion is debug-info aware: every
    promoted store becomes a [Dbg] binding carrying the stored value, and
    every inserted phi is announced with a [Dbg] binding at the head of
    its block, so immediately after promotion a debugger still sees every
    variable almost everywhere — the losses measured by the experiments
    come from the passes that run later.

    Classic algorithm: phi insertion at iterated dominance frontiers of
    the store blocks, then a dominator-tree renaming walk. Uninitialized
    slots read as 0, matching the VM's zeroed frames. *)

module Label_set = Set.Make (Int)

let promotable (s : Ir.slot) ~only =
  (not s.Ir.s_array) && s.Ir.s_size = 1
  && match only with None -> true | Some ids -> List.mem s.Ir.s_id ids

(** [run ?only fn] promotes the scalar slots of [fn] (all of them by
    default, or just those whose ids appear in [only] — used by SROA to
    promote the slots it scalarized). *)
let run ?only (fn : Ir.fn) =
  Ir.prune_unreachable fn;
  let slots = List.filter (fun s -> promotable s ~only) fn.Ir.f_slots in
  if slots <> [] then begin
    let slot_ids = List.map (fun s -> s.Ir.s_id) slots in
    let is_promoted id = List.mem id slot_ids in
    let dom = Dom.compute fn in
    let df = Dom.frontiers fn dom in
    (* Blocks storing to each slot. *)
    let def_blocks = Hashtbl.create 16 in
    Ir.iter_instrs fn (fun b i ->
        match i.Ir.ik with
        | Ir.Store ({ base = Ir.Slot id; _ }, _) when is_promoted id ->
            let cur = Option.value ~default:[] (Hashtbl.find_opt def_blocks id) in
            if not (List.mem b.Ir.b_label cur) then
              Hashtbl.replace def_blocks id (b.Ir.b_label :: cur)
        | _ -> ());
    (* Iterated dominance frontier phi insertion; remember which slot a
       phi stands for so renaming can treat it as a definition. *)
    let phi_slot : (int * int, Ir.phi * Ir.var_id option) Hashtbl.t =
      Hashtbl.create 32 (* (block, slot) -> phi *)
    in
    List.iter
      (fun (s : Ir.slot) ->
        let id = s.Ir.s_id in
        let work = ref (Option.value ~default:[] (Hashtbl.find_opt def_blocks id)) in
        let placed = ref Label_set.empty in
        while !work <> [] do
          match !work with
          | [] -> ()
          | b :: rest ->
              work := rest;
              List.iter
                (fun d ->
                  if not (Label_set.mem d !placed) then begin
                    placed := Label_set.add d !placed;
                    let phi = { Ir.p_dst = Ir.fresh_reg fn; p_args = [] } in
                    (Ir.block fn d).Ir.phis <- (Ir.block fn d).Ir.phis @ [ phi ];
                    Hashtbl.replace phi_slot (d, id) (phi, s.Ir.s_var);
                    work := d :: !work
                  end)
                (Option.value ~default:[] (Hashtbl.find_opt df b))
        done)
      slots;
    (* Renaming walk over the dominator tree. *)
    let current : (int, Ir.operand) Hashtbl.t = Hashtbl.create 16 in
    let subst : (Ir.reg, Ir.operand) Hashtbl.t = Hashtbl.create 64 in
    let resolve o =
      (* Chase load-substitutions so stacks always hold final operands. *)
      let rec go o depth =
        match o with
        | Ir.Reg r when depth < 64 -> (
            match Hashtbl.find_opt subst r with
            | Some o' -> go o' (depth + 1)
            | None -> o)
        | _ -> o
      in
      go o 0
    in
    let rec walk label saved =
      let b = Ir.block fn label in
      let saved = ref saved in
      let set_current id v =
        saved := (id, Hashtbl.find_opt current id) :: !saved;
        Hashtbl.replace current id v
      in
      (* Phis inserted for slots define their slot; announce the binding
         for the debugger. *)
      let dbg_for_phis =
        List.filter_map
          (fun (s : Ir.slot) ->
            match Hashtbl.find_opt phi_slot (label, s.Ir.s_id) with
            | Some (phi, var) ->
                set_current s.Ir.s_id (Ir.Reg phi.Ir.p_dst);
                Option.map
                  (fun v ->
                    { Ir.ik = Ir.Dbg (v, Some (Ir.Reg phi.Ir.p_dst)); line = None })
                  var
            | None -> None)
          slots
      in
      let new_instrs =
        List.filter_map
          (fun (i : Ir.instr) ->
            let ik = Ir.subst_uses (fun r -> Hashtbl.find_opt subst r) i.Ir.ik in
            i.Ir.ik <- ik;
            match ik with
            | Ir.Store ({ base = Ir.Slot id; _ }, v) when is_promoted id ->
                let v = resolve v in
                set_current id v;
                let var =
                  List.find_map
                    (fun (s : Ir.slot) ->
                      if s.Ir.s_id = id then s.Ir.s_var else None)
                    slots
                in
                (match var with
                | Some vid ->
                    (* The store becomes a debug binding on the same line. *)
                    i.Ir.ik <- Ir.Dbg (vid, Some v);
                    Some i
                | None -> None)
            | Ir.Load (r, { base = Ir.Slot id; _ }) when is_promoted id ->
                let v =
                  Option.value ~default:(Ir.Imm 0) (Hashtbl.find_opt current id)
                in
                Hashtbl.replace subst r v;
                None
            | _ -> Some i)
          b.Ir.instrs
      in
      b.Ir.instrs <- dbg_for_phis @ new_instrs;
      b.Ir.term <- Ir.subst_term (fun r -> Hashtbl.find_opt subst r) b.Ir.term;
      (* Feed successor phis along each edge. *)
      List.iter
        (fun succ ->
          List.iter
            (fun (s : Ir.slot) ->
              match Hashtbl.find_opt phi_slot (succ, s.Ir.s_id) with
              | Some (phi, _) ->
                  let v =
                    Option.value ~default:(Ir.Imm 0)
                      (Hashtbl.find_opt current s.Ir.s_id)
                  in
                  phi.Ir.p_args <- phi.Ir.p_args @ [ (label, v) ]
              | None -> ())
            slots)
        (Ir.succs b.Ir.term);
      List.iter (fun c -> walk c []) (Dom.children dom label);
      (* Restore the slot environment on the way out. *)
      List.iter
        (fun (id, old) ->
          match old with
          | Some v -> Hashtbl.replace current id v
          | None -> Hashtbl.remove current id)
        !saved
    in
    walk fn.Ir.entry [];
    (* A second full substitution pass: uses in blocks visited before
       their defining loads (impossible under dominance, but phi argument
       rewriting above may have captured pre-substitution registers). *)
    Ir.apply_subst fn (fun r -> Hashtbl.find_opt subst r);
    fn.Ir.f_slots <-
      List.filter (fun (s : Ir.slot) -> not (is_promoted s.Ir.s_id)) fn.Ir.f_slots
  end
