(** The single arithmetic semantics shared by the AST interpreter, the
    IR constant folder, every simplification pass and the VM — so that
    no transformation can ever change a program's observable output.

    All operations are total: division/remainder by zero yield 0, shift
    amounts are taken modulo 64 with word-size-or-more shifts saturating
    to 0 (or the sign for arithmetic right shifts). *)

let add = ( + )
let sub = ( - )
let mul = ( * )

let div a b = if b = 0 then 0 else a / b

let rem a b = if b = 0 then 0 else a mod b

let band = ( land )
let bor = ( lor )
let bxor = ( lxor )

let shl a b =
  let s = b land 63 in
  if s >= 63 then 0 else a lsl s

let shr a b =
  let s = b land 63 in
  if s >= 63 then if a < 0 then -1 else 0 else a asr s

let ceq a b = if a = b then 1 else 0
let cne a b = if a <> b then 1 else 0
let clt a b = if a < b then 1 else 0
let cle a b = if a <= b then 1 else 0
let cgt a b = if a > b then 1 else 0
let cge a b = if a >= b then 1 else 0

let neg a = -a
let lnot a = if a = 0 then 1 else 0
let bnot a = Stdlib.lnot a

(** [wrap_index i size] — total array indexing: indices wrap modulo the
    array size (the runtime convention of both the VM and the
    interpreter). *)
let wrap_index i size = if size <= 0 then 0 else ((i mod size) + size) mod size
