(** Debug-trace extraction, following the paper's protocol
    (Section III-A, step 2): set a temporary breakpoint on every line in
    the line table, run the program over all its inputs in one session,
    and on each (first) hit record the line and the variables that are
    visible with a value at the stopped PC.

    Like modern [gdb], a breakpoint on a line arms {e every} code
    location carrying that line (inlined copies, unrolled iterations,
    threaded duplicates included); the first location hit records the
    line and the variables the debug info can materialize at that PC,
    and further hits of the same line are ignored (the temporary
    breakpoint is gone). *)

module Var_set = Set.Make (struct
  type t = Ir.var_id

  let compare = compare
end)

type trace = {
  stepped : (int, Var_set.t) Hashtbl.t;  (** line -> variables at first hit *)
  steppable : int list;  (** all lines present in the binary's line table *)
  hit_order : int list;  (** lines in first-hit order *)
  per_input_lines : int list array;
      (** lines newly observed per input, for corpus pruning *)
}

(** [trace bin ~entry ~inputs] runs one debug session over [inputs].
    [all_locations] (default, gdb's behaviour) arms every code location
    of a line; [false] arms only the lowest address — the older
    single-location policy kept for the ablation study, under which a
    line duplicated by inlining is missed whenever the armed copy sits on
    a cold path. *)
let trace ?(all_locations = true) (bin : Emit.binary) ~entry
    ~(inputs : int list list) : trace =
  let bps = Array.make (Array.length bin.Emit.code) false in
  let line_at = Hashtbl.create 64 in
  List.iter
    (fun (e : Dwarfish.line_entry) ->
      bps.(e.Dwarfish.addr) <- true;
      Hashtbl.replace line_at e.Dwarfish.addr e.Dwarfish.line)
    bin.Emit.debug.Dwarfish.line_table;
  if not all_locations then begin
    Array.fill bps 0 (Array.length bps) false;
    List.iter
      (fun (_line, addr) -> bps.(addr) <- true)
      (Dwarfish.breakpoint_addrs bin.Emit.debug)
  end;
  let stepped = Hashtbl.create 64 in
  let hit_order = ref [] in
  let per_input = Array.make (max 1 (List.length inputs)) [] in
  List.iteri
    (fun idx input ->
      let res =
        Vm.run bin ~entry ~input
          { Vm.default_opts with breakpoints = Some bps }
      in
      let new_lines =
        List.filter_map
          (fun addr ->
            match Hashtbl.find_opt line_at addr with
            | Some line when not (Hashtbl.mem stepped line) ->
                let vars =
                  Dwarfish.available_at bin.Emit.debug addr
                  |> List.map fst |> Var_set.of_list
                in
                Hashtbl.replace stepped line vars;
                hit_order := line :: !hit_order;
                Some line
            | Some _ | None -> None)
          res.Vm.bp_hits
      in
      if idx < Array.length per_input then per_input.(idx) <- new_lines)
    inputs;
  {
    stepped;
    steppable = Dwarfish.steppable_lines bin.Emit.debug;
    hit_order = List.rev !hit_order;
    per_input_lines = per_input;
  }

let stepped_lines t =
  Hashtbl.fold (fun line _ acc -> line :: acc) t.stepped [] |> List.sort compare

let vars_at t line =
  Option.value ~default:Var_set.empty (Hashtbl.find_opt t.stepped line)
