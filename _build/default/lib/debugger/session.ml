(** Interactive debugger sessions driven by command scripts — the
    analog of the paper's methodology of driving gdb in batch mode
    (Section III-A runs gdb under Python scripting; this module is the
    same idea over our VM).

    A session owns a paused VM and executes gdb-flavoured commands:

    {v
    break 12          arm every code address of line 12 (multi-location)
    break 12 if i > 3 conditional breakpoint on a debug-visible variable
    tbreak 12         same, cleared on first hit
    delete 12         remove the breakpoint on line 12
    run 3,1,4         (re)start with these input() values
    continue | c      resume until the next breakpoint or exit
    step | s          run to the next different source line (enters calls)
    next | n          like step, but skip over calls
    finish            run until the current function returns
    print x | p x     materialize a variable from the debug info
    watch x           software watchpoint: stop when x's value changes
    unwatch x         remove the watchpoint
    info watchpoints  watched variables and their last values
    info locals       every variable the debug info can see here
    info line         current line and function
    info breakpoints  armed breakpoints
    backtrace | bt    the call stack
    v}

    Every command returns its output lines; [script] replays a whole
    command list and returns the transcript, so sessions are easy to
    test and to diff across optimization levels — which is exactly what
    the paper does to attribute losses. *)

type cond = {
  c_var : string;
  c_op : string;  (** ==, !=, <, <=, >, >= *)
  c_value : int;
}

type bp = {
  bp_line : int;
  bp_addrs : int list;
  bp_temporary : bool;
  bp_cond : cond option;
}

type watchpoint = {
  wp_name : string;
  mutable wp_last : string;
  mutable wp_depth : int;
      (** frame depth the watch was set at: sampling happens only there
          (a callee cannot change the frame-local view), and leaving the
          frame deletes the watchpoint, as gdb does *)
}

type t = {
  bin : Emit.binary;
  entry : string;
  mutable breakpoints : bp list;
  mutable watchpoints : watchpoint list;
  mutable st : Vm.state option;  (** [None] until [run] / after exit *)
  mutable running : bool;
}

let create (bin : Emit.binary) ~entry =
  {
    bin;
    entry;
    breakpoints = [];
    watchpoints = [];
    st = None;
    running = false;
  }

(* ------------------------------------------------------------------ *)
(* VM state construction (mirrors Vm.run's prologue)                   *)

let fresh_state (s : t) ~input : Vm.state =
  let globals = Hashtbl.create 16 in
  List.iter
    (fun (g : Ir.global_def) ->
      Hashtbl.replace globals g.Ir.g_name (Array.make g.Ir.g_size g.Ir.g_init))
    s.bin.Emit.bin_globals;
  let st =
    {
      Vm.bin = s.bin;
      pregs = Array.make (Mach.num_regs + 1) 0;
      frames = [];
      globals;
      input = Array.of_list input;
      input_pos = 0;
      out_rev = [];
      cost = 0;
      icount = 0;
      pc = 0;
      last_writes = [];
      last_was_load = false;
      edges = Hashtbl.create 16;
      bp_hits_rev = [];
      halted = false;
    }
  in
  let fi =
    match Hashtbl.find_opt s.bin.Emit.fn_by_name s.entry with
    | Some idx -> s.bin.Emit.funcs.(idx)
    | None -> raise (Vm.Runtime_error ("no entry function " ^ s.entry))
  in
  Vm.enter_function st fi [] ~ret_pc:(-1) ~ret_dst:None;
  st

(* ------------------------------------------------------------------ *)
(* Inspection helpers                                                  *)

let cur_line (s : t) (st : Vm.state) =
  if st.Vm.pc >= 0 && st.Vm.pc < Array.length s.bin.Emit.line_of then
    s.bin.Emit.line_of.(st.Vm.pc)
  else None

let cur_func (s : t) (st : Vm.state) =
  match st.Vm.frames with
  | f :: _ -> f.Vm.fr_fi.Emit.fi_name
  | [] ->
      if st.Vm.pc >= 0 && st.Vm.pc < Array.length s.bin.Emit.fn_of_addr then
        s.bin.Emit.funcs.(s.bin.Emit.fn_of_addr.(st.Vm.pc)).Emit.fi_name
      else "?"

let slot_size (fi : Emit.func_info) offset =
  List.find_map
    (fun (_, o, size) -> if o = offset then Some size else None)
    fi.Emit.fi_slot_offset

(* Materialize a variable's value from its DWARF-like location, exactly
   as the debugger would: registers from the register file, slots from
   the current frame, constants from the entry itself. *)
let materialize (st : Vm.state) (where : Dwarfish.location) ~is_array =
  match st.Vm.frames with
  | [] -> "<no frame>"
  | f :: _ -> (
      match where with
      | Dwarfish.Const n -> string_of_int n
      | Dwarfish.In_reg k ->
          if k >= 0 && k < Array.length st.Vm.pregs then
            string_of_int st.Vm.pregs.(k)
          else "<bad register>"
      | Dwarfish.In_slot o ->
          if o < 0 || o >= Array.length f.Vm.fr_mem then "<bad slot>"
          else if is_array then
            let size =
              match slot_size f.Vm.fr_fi o with
              | Some s -> min s (Array.length f.Vm.fr_mem - o)
              | None -> 1
            in
            let words =
              List.init (min size 8) (fun i ->
                  string_of_int f.Vm.fr_mem.(o + i))
            in
            "{"
            ^ String.concat ", " words
            ^ (if size > 8 then ", ..." else "")
            ^ "}"
          else string_of_int f.Vm.fr_mem.(o))

let visible_vars (s : t) (st : Vm.state) =
  let avail = Dwarfish.available_at s.bin.Emit.debug st.Vm.pc in
  let is_array v =
    List.exists
      (fun (vi : Dwarfish.var_info) -> vi.Dwarfish.vi_var = v && vi.Dwarfish.vi_is_array)
      s.bin.Emit.debug.Dwarfish.vars
  in
  List.map (fun (v, where) -> (v, where, is_array v)) avail

(* The value a debugger would display for [name] here: the in-scope
   candidate's materialization, or a placeholder when the location lists
   do not cover this address. Used by print and by (software)
   watchpoints, which re-sample after every instruction. *)
let sample_value (s : t) (st : Vm.state) name =
  let fn = cur_func s st in
  let candidates =
    List.filter (fun (v, _, _) -> v.Ir.name = name) (visible_vars s st)
  in
  let pick =
    match List.find_opt (fun (v, _, _) -> v.Ir.origin = fn) candidates with
    | Some c -> Some c
    | None -> ( match candidates with c :: _ -> Some c | [] -> None)
  in
  match pick with
  | Some (_, where, is_array) -> materialize st where ~is_array
  | None -> "<not visible>"

(* All variables the debug info mentions anywhere inside the current
   function — used to distinguish "optimized out here" from "no such
   symbol". *)
let vars_of_current_func (s : t) (st : Vm.state) =
  match st.Vm.frames with
  | [] -> []
  | f :: _ ->
      let lo = f.Vm.fr_fi.Emit.fi_entry and hi = f.Vm.fr_fi.Emit.fi_end in
      List.filter_map
        (fun (vi : Dwarfish.var_info) ->
          if
            List.exists
              (fun (r : Dwarfish.range) -> r.Dwarfish.lo >= lo && r.Dwarfish.lo < hi)
              vi.Dwarfish.vi_ranges
          then Some vi.Dwarfish.vi_var
          else None)
        s.bin.Emit.debug.Dwarfish.vars

let stop_report (s : t) (st : Vm.state) =
  let fn = cur_func s st in
  match cur_line s st with
  | Some l -> Printf.sprintf "stopped at %s, line %d" fn l
  | None -> Printf.sprintf "stopped at %s, address %d (no line)" fn st.Vm.pc

let exit_report (st : Vm.state) =
  Printf.sprintf "[program exited; output: [%s]]"
    (String.concat "; " (List.map string_of_int (List.rev st.Vm.out_rev)))

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)

exception Stop of string list

(* Condition evaluation: a condition that cannot be evaluated (variable
   optimized out at the stop site) stops with a note, like gdb's "Error
   in testing breakpoint condition" behaviour. *)
let eval_cond (s : t) (st : Vm.state) (c : cond) =
  match int_of_string_opt (sample_value s st c.c_var) with
  | None -> `Unevaluable
  | Some v ->
      let holds =
        match c.c_op with
        | "==" -> v = c.c_value
        | "!=" -> v <> c.c_value
        | "<" -> v < c.c_value
        | "<=" -> v <= c.c_value
        | ">" -> v > c.c_value
        | ">=" -> v >= c.c_value
        | _ -> false
      in
      if holds then `Stop else `Skip

let hit_breakpoint (s : t) (st : Vm.state) pc =
  match
    List.find_opt (fun b -> List.mem pc b.bp_addrs) s.breakpoints
  with
  | None -> None
  | Some b -> (
      let consume note =
        if b.bp_temporary then
          s.breakpoints <- List.filter (fun x -> x != b) s.breakpoints;
        Some (b, note)
      in
      match b.bp_cond with
      | None -> consume None
      | Some c -> (
          match eval_cond s st c with
          | `Stop -> consume None
          | `Skip -> None
          | `Unevaluable ->
              consume
                (Some
                   (Printf.sprintf
                      "note: condition %s %s %d could not be evaluated (%s = %s)"
                      c.c_var c.c_op c.c_value c.c_var
                      (sample_value s st c.c_var)))))

(* Run until [stop_here] says stop, a breakpoint is hit, or the program
   exits. [skip_bp_line] suppresses breakpoint stops while still on that
   source line, so stepping off a breakpointed multi-location line does
   not immediately re-trigger it (gdb's behaviour). *)
let resume ?skip_bp_line (s : t) (st : Vm.state) ~stop_here =
  let opts = Vm.default_opts in
  (* Breakpoints re-arm once execution leaves [skip_bp_line] at the
     starting frame depth or shallower: a loop coming back to the line
     stops again, but a call made *from* the line (and the line's
     post-call locations) does not re-trigger it. *)
  let armed = ref (skip_bp_line = None) in
  let depth0 = List.length st.Vm.frames in
  try
    while not st.Vm.halted do
      (try Vm.step st opts None with Exit -> ());
      if st.Vm.halted then raise (Stop [ exit_report st ]);
      if
        (not !armed)
        && cur_line s st <> skip_bp_line
        && List.length st.Vm.frames <= depth0
      then armed := true;
      (match if !armed then hit_breakpoint s st st.Vm.pc else None with
      | Some (b, note) ->
          raise
            (Stop
               ((match note with Some n -> [ n ] | None -> [])
               @ [
                   Printf.sprintf "%s %d, %s"
                     (if b.bp_temporary then "temporary breakpoint"
                      else "breakpoint")
                     b.bp_line (stop_report s st);
                 ]))
      | None -> ());
      (* Software watchpoints: re-sample after every instruction, like
         gdb without hardware debug registers. Sampling is frame-scoped:
         skipped inside callees, and leaving the owning frame deletes
         the watchpoint. *)
      let depth_now = List.length st.Vm.frames in
      List.iter
        (fun w ->
          if depth_now < w.wp_depth then begin
            s.watchpoints <- List.filter (fun x -> x != w) s.watchpoints;
            raise
              (Stop
                 [
                   Printf.sprintf
                     "watchpoint on %s deleted (program left its frame)"
                     w.wp_name;
                   stop_report s st;
                 ])
          end
          else if depth_now = w.wp_depth then begin
            let now = sample_value s st w.wp_name in
            if now <> w.wp_last then begin
              let old = w.wp_last in
              w.wp_last <- now;
              raise
                (Stop
                   [
                     Printf.sprintf "watchpoint: %s" w.wp_name;
                     Printf.sprintf "  old = %s" old;
                     Printf.sprintf "  new = %s" now;
                     stop_report s st;
                   ])
            end
          end)
        s.watchpoints;
      if stop_here st then raise (Stop [ stop_report s st ])
    done;
    [ exit_report st ]
  with
  | Stop lines -> lines
  | Vm.Budget_exhausted ->
      s.running <- false;
      [ "[program timed out]" ]
  | Vm.Runtime_error m ->
      s.running <- false;
      [ "[runtime error: " ^ m ^ "]" ]

let finish_stop (s : t) (st : Vm.state) lines =
  if st.Vm.halted then begin
    s.running <- false;
    s.st <- None
  end;
  lines

let require_running (s : t) f =
  match s.st with
  | Some st when s.running && not st.Vm.halted -> f st
  | _ -> [ "the program is not running (use: run [inputs])" ]

(* ------------------------------------------------------------------ *)
(* Commands                                                            *)

let addrs_of_line (s : t) line =
  let rec collect = function
    | [] -> []
    | (e : Dwarfish.line_entry) :: rest ->
        (if e.Dwarfish.line = line then [ e.Dwarfish.addr ] else [])
        @ collect rest
  in
  collect s.bin.Emit.debug.Dwarfish.line_table

let cmd_break ?cond (s : t) line ~temporary =
  match addrs_of_line s line with
  | [] ->
      [
        Printf.sprintf
          "no code at line %d (line not in the binary's line table)" line;
      ]
  | addrs ->
      s.breakpoints <-
        { bp_line = line; bp_addrs = addrs; bp_temporary = temporary;
          bp_cond = cond }
        :: List.filter (fun b -> b.bp_line <> line) s.breakpoints;
      [
        Printf.sprintf "%s at line %d (%d location%s)%s"
          (if temporary then "temporary breakpoint" else "breakpoint")
          line (List.length addrs)
          (if List.length addrs = 1 then "" else "s")
          (match cond with
          | Some c -> Printf.sprintf " if %s %s %d" c.c_var c.c_op c.c_value
          | None -> "");
      ]

let cmd_watch (s : t) name =
  let known =
    List.exists
      (fun (vi : Dwarfish.var_info) -> vi.Dwarfish.vi_var.Ir.name = name)
      s.bin.Emit.debug.Dwarfish.vars
  in
  if not known then
    [ Printf.sprintf "no symbol \"%s\" in the debug info" name ]
  else begin
    let baseline, depth =
      match s.st with
      | Some st when s.running ->
          (sample_value s st name, List.length st.Vm.frames)
      | _ -> ("<not visible>", 1)
    in
    s.watchpoints <-
      { wp_name = name; wp_last = baseline; wp_depth = depth }
      :: List.filter (fun w -> w.wp_name <> name) s.watchpoints;
    [ Printf.sprintf "watchpoint on %s (software: checked every instruction)" name ]
  end

let cmd_unwatch (s : t) name =
  let before = List.length s.watchpoints in
  s.watchpoints <- List.filter (fun w -> w.wp_name <> name) s.watchpoints;
  if List.length s.watchpoints < before then
    [ Printf.sprintf "deleted watchpoint on %s" name ]
  else [ Printf.sprintf "no watchpoint on %s" name ]

let cmd_info_watchpoints (s : t) =
  match s.watchpoints with
  | [] -> [ "no watchpoints" ]
  | ws ->
      List.map
        (fun w -> Printf.sprintf "%s = %s" w.wp_name w.wp_last)
        (List.sort compare (List.map (fun w -> w) ws))

let cmd_delete (s : t) line =
  let before = List.length s.breakpoints in
  s.breakpoints <- List.filter (fun b -> b.bp_line <> line) s.breakpoints;
  if List.length s.breakpoints < before then
    [ Printf.sprintf "deleted breakpoint at line %d" line ]
  else [ Printf.sprintf "no breakpoint at line %d" line ]

let cmd_run (s : t) input =
  let st = fresh_state s ~input in
  s.st <- Some st;
  s.running <- true;
  List.iter
    (fun w ->
      w.wp_last <- sample_value s st w.wp_name;
      w.wp_depth <- List.length st.Vm.frames)
    s.watchpoints;
  (* Stop before executing the entry address if it carries a breakpoint. *)
  match hit_breakpoint s st st.Vm.pc with
  | Some (b, _) ->
      [
        Printf.sprintf "breakpoint %d, %s" b.bp_line (stop_report s st);
      ]
  | None -> finish_stop s st (resume s st ~stop_here:(fun _ -> false))

let cmd_continue (s : t) =
  require_running s (fun st ->
      finish_stop s st
        (resume ?skip_bp_line:(cur_line s st) s st ~stop_here:(fun _ -> false)))

let cmd_step (s : t) ~over =
  require_running s (fun st ->
      let line0 = cur_line s st in
      let depth0 = List.length st.Vm.frames in
      let stop_here (st : Vm.state) =
        let depth = List.length st.Vm.frames in
        let at_line = cur_line s st in
        at_line <> None && at_line <> line0
        && (not over || depth <= depth0)
        (* entering a deeper frame with step lands on its first line *)
      in
      finish_stop s st (resume ?skip_bp_line:line0 s st ~stop_here))

let cmd_finish (s : t) =
  require_running s (fun st ->
      let depth0 = List.length st.Vm.frames in
      if depth0 <= 1 then [ "cannot finish the outermost frame" ]
      else
        let stop_here (st : Vm.state) = List.length st.Vm.frames < depth0 in
        finish_stop s st (resume s st ~stop_here))

let cmd_print (s : t) name =
  require_running s (fun st ->
      let fn = cur_func s st in
      let candidates =
        List.filter (fun (v, _, _) -> v.Ir.name = name) (visible_vars s st)
      in
      let pick =
        match
          List.find_opt (fun (v, _, _) -> v.Ir.origin = fn) candidates
        with
        | Some c -> Some c
        | None -> ( match candidates with c :: _ -> Some c | [] -> None)
      in
      match pick with
      | Some (v, where, is_array) ->
          [
            Printf.sprintf "%s = %s" v.Ir.name
              (materialize st where ~is_array);
          ]
      | None ->
          if
            List.exists
              (fun (v : Ir.var_id) -> v.Ir.name = name)
              (vars_of_current_func s st)
          then [ Printf.sprintf "%s = <optimized out>" name ]
          else
            [ Printf.sprintf "no symbol \"%s\" in current context" name ])

let cmd_info_locals (s : t) =
  require_running s (fun st ->
      let fn = cur_func s st in
      match visible_vars s st with
      | [] -> [ "no locals visible here" ]
      | vars ->
          List.map
            (fun ((v : Ir.var_id), where, is_array) ->
              Printf.sprintf "%s%s = %s"
                (if v.Ir.origin = fn then "" else v.Ir.origin ^ "::")
                v.Ir.name
                (materialize st where ~is_array))
            (List.sort compare vars))

let cmd_info_line (s : t) =
  require_running s (fun st ->
      match cur_line s st with
      | Some l -> [ Printf.sprintf "line %d in %s" l (cur_func s st) ]
      | None -> [ Printf.sprintf "no line for address %d" st.Vm.pc ])

let cmd_info_breakpoints (s : t) =
  match s.breakpoints with
  | [] -> [ "no breakpoints" ]
  | bps ->
      List.map
        (fun b ->
          Printf.sprintf "line %-5d %-9s %d location%s%s" b.bp_line
            (if b.bp_temporary then "temporary" else "keep")
            (List.length b.bp_addrs)
            (if List.length b.bp_addrs = 1 then "" else "s")
            (match b.bp_cond with
            | Some c -> Printf.sprintf "  if %s %s %d" c.c_var c.c_op c.c_value
            | None -> ""))
        (List.sort (fun a b -> compare a.bp_line b.bp_line) bps)

let cmd_backtrace (s : t) =
  require_running s (fun st ->
      (* A caller frame is suspended at the call site: the instruction
         before the return address recorded in the frame above it. *)
      let callee_ret = ref None in
      List.mapi
        (fun i (f : Vm.frame) ->
          let where =
            if i = 0 then
              match cur_line s st with
              | Some l -> Printf.sprintf " at line %d" l
              | None -> ""
            else
              match !callee_ret with
              | Some ret_pc
                when ret_pc > 0 && ret_pc <= Array.length s.bin.Emit.line_of
                -> (
                  match s.bin.Emit.line_of.(ret_pc - 1) with
                  | Some l -> Printf.sprintf " at line %d (call site)" l
                  | None -> "")
              | _ -> ""
          in
          callee_ret := Some f.Vm.fr_ret_pc;
          Printf.sprintf "#%d %s%s" i f.Vm.fr_fi.Emit.fi_name where)
        st.Vm.frames)

(* ------------------------------------------------------------------ *)
(* Parsing and dispatch                                                *)

let parse_ints str =
  if String.trim str = "" then []
  else
    String.split_on_char ',' str
    |> List.map (fun x -> int_of_string (String.trim x))

let exec (s : t) command : string list =
  let words =
    String.split_on_char ' ' (String.trim command)
    |> List.filter (fun w -> w <> "")
  in
  match words with
  | [] -> []
  | [ ("break" | "b") ; l ] -> (
      match int_of_string_opt l with
      | Some line -> cmd_break s line ~temporary:false
      | None -> [ "usage: break <line> [if <var> <op> <int>]" ])
  | [ ("break" | "b"); l; "if"; var; op; value ] -> (
      match
        ( int_of_string_opt l,
          List.mem op [ "=="; "!="; "<"; "<="; ">"; ">=" ],
          int_of_string_opt value )
      with
      | Some line, true, Some v ->
          cmd_break s line ~temporary:false
            ~cond:{ c_var = var; c_op = op; c_value = v }
      | _ -> [ "usage: break <line> [if <var> <op> <int>]" ])
  | [ "tbreak"; l ] -> (
      match int_of_string_opt l with
      | Some line -> cmd_break s line ~temporary:true
      | None -> [ "usage: tbreak <line>" ])
  | [ "delete"; l ] -> (
      match int_of_string_opt l with
      | Some line -> cmd_delete s line
      | None -> [ "usage: delete <line>" ])
  | "run" :: rest -> (
      match parse_ints (String.concat "" rest) with
      | input -> cmd_run s input
      | exception _ -> [ "usage: run [i1,i2,...]" ])
  | [ ("continue" | "c") ] -> cmd_continue s
  | [ ("step" | "s") ] -> cmd_step s ~over:false
  | [ ("next" | "n") ] -> cmd_step s ~over:true
  | [ "finish" ] -> cmd_finish s
  | [ ("print" | "p"); name ] -> cmd_print s name
  | [ "watch"; name ] -> cmd_watch s name
  | [ "unwatch"; name ] -> cmd_unwatch s name
  | [ "info"; "watchpoints" ] -> cmd_info_watchpoints s
  | [ "info"; "locals" ] -> cmd_info_locals s
  | [ "info"; "line" ] -> cmd_info_line s
  | [ "info"; "breakpoints" ] -> cmd_info_breakpoints s
  | [ ("backtrace" | "bt") ] -> cmd_backtrace s
  | [ "quit" ] ->
      s.running <- false;
      s.st <- None;
      [ "quit" ]
  | _ -> [ "unknown command: " ^ command ]

(** [script bin ~entry commands] replays a batch script (the gdb -x
    analog) and returns the full transcript: each command echoed with a
    ["(dbg) "] prompt, followed by its output. *)
let script (bin : Emit.binary) ~entry commands =
  let s = create bin ~entry in
  let buf = Buffer.create 1024 in
  List.iter
    (fun c ->
      Buffer.add_string buf ("(dbg) " ^ c ^ "\n");
      List.iter
        (fun l -> Buffer.add_string buf (l ^ "\n"))
        (exec s c))
    commands;
  Buffer.contents buf
