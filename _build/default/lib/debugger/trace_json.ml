(** JSON export/import of debug traces.

    The paper's prototype "export[s] the debug trace for the session as
    a JSON file to ease offline trace comparisons" (Section III-C); this
    module provides the same facility. The schema is fixed and small, so
    the (de)serializer is self-contained:

    {v
    { "steppable": [l, ...],
      "hit_order": [l, ...],
      "stepped":   [ { "line": l, "vars": ["origin:name", ...] }, ... ] }
    v} *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** [to_string trace] renders the trace as a JSON document. Lines are
    sorted; variables per line are sorted; output is canonical, so equal
    traces produce equal strings (diff-friendly, as intended). *)
let to_string (t : Debugger.trace) =
  let buf = Buffer.create 1024 in
  let ints l =
    "[" ^ String.concat "," (List.map string_of_int l) ^ "]"
  in
  Buffer.add_string buf "{\n  \"steppable\": ";
  Buffer.add_string buf (ints (List.sort compare t.Debugger.steppable));
  Buffer.add_string buf ",\n  \"hit_order\": ";
  Buffer.add_string buf (ints t.Debugger.hit_order);
  Buffer.add_string buf ",\n  \"stepped\": [";
  let entries =
    Hashtbl.fold (fun line vars acc -> (line, vars) :: acc) t.Debugger.stepped []
    |> List.sort compare
  in
  List.iteri
    (fun i (line, vars) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\n    { \"line\": %d, \"vars\": [" line);
      let names =
        Debugger.Var_set.elements vars
        |> List.map (fun (v : Ir.var_id) ->
               Printf.sprintf "\"%s\"" (escape (Ir.var_to_string v)))
      in
      Buffer.add_string buf (String.concat ", " names);
      Buffer.add_string buf "] }")
    entries;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing (schema-specific recursive descent)                          *)

exception Parse_error of string

type tok = Lbrace | Rbrace | Lbrack | Rbrack | Colon | Comma | Str of string | Num of int

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | '{' -> toks := Lbrace :: !toks; incr i
    | '}' -> toks := Rbrace :: !toks; incr i
    | '[' -> toks := Lbrack :: !toks; incr i
    | ']' -> toks := Rbrack :: !toks; incr i
    | ':' -> toks := Colon :: !toks; incr i
    | ',' -> toks := Comma :: !toks; incr i
    | '"' ->
        let buf = Buffer.create 16 in
        incr i;
        let fin = ref false in
        while not !fin do
          if !i >= n then raise (Parse_error "unterminated string");
          (match s.[!i] with
          | '"' -> fin := true
          | '\\' ->
              incr i;
              if !i >= n then raise (Parse_error "bad escape");
              (match s.[!i] with
              | 'n' -> Buffer.add_char buf '\n'
              | c -> Buffer.add_char buf c)
          | c -> Buffer.add_char buf c);
          incr i
        done;
        toks := Str (Buffer.contents buf) :: !toks
    | ('-' | '0' .. '9') ->
        let j = ref !i in
        if s.[!j] = '-' then incr j;
        while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
          incr j
        done;
        toks := Num (int_of_string (String.sub s !i (!j - !i))) :: !toks;
        i := !j
    | c -> raise (Parse_error (Printf.sprintf "unexpected %C" c)));
  done;
  List.rev !toks

(** [of_string s] parses a document produced by {!to_string}. The
    [per_input_lines] detail is not serialized and comes back empty. *)
let of_string s : Debugger.trace =
  let toks = ref (tokenize s) in
  let next () =
    match !toks with
    | [] -> raise (Parse_error "unexpected end")
    | t :: rest ->
        toks := rest;
        t
  in
  let expect t =
    if next () <> t then raise (Parse_error "unexpected token")
  in
  let expect_key k =
    match next () with
    | Str s when s = k -> expect Colon
    | _ -> raise (Parse_error ("expected key " ^ k))
  in
  let int_list () =
    expect Lbrack;
    let rec go acc =
      match next () with
      | Rbrack -> List.rev acc
      | Num v -> (
          match next () with
          | Comma -> go (v :: acc)
          | Rbrack -> List.rev (v :: acc)
          | _ -> raise (Parse_error "bad int list"))
      | _ -> raise (Parse_error "bad int list")
    in
    go []
  in
  let var_of_string s =
    match String.index_opt s ':' with
    | Some k ->
        {
          Ir.origin = String.sub s 0 k;
          name = String.sub s (k + 1) (String.length s - k - 1);
        }
    | None -> { Ir.origin = ""; name = s }
  in
  expect Lbrace;
  expect_key "steppable";
  let steppable = int_list () in
  expect Comma;
  expect_key "hit_order";
  let hit_order = int_list () in
  expect Comma;
  expect_key "stepped";
  expect Lbrack;
  let stepped = Hashtbl.create 64 in
  let rec entries () =
    match next () with
    | Rbrack -> ()
    | Lbrace ->
        expect_key "line";
        let line = match next () with Num v -> v | _ -> raise (Parse_error "line") in
        expect Comma;
        expect_key "vars";
        expect Lbrack;
        let rec vars acc =
          match next () with
          | Rbrack -> acc
          | Str s -> (
              let acc = Debugger.Var_set.add (var_of_string s) acc in
              match next () with
              | Comma -> vars acc
              | Rbrack -> acc
              | _ -> raise (Parse_error "vars"))
          | _ -> raise (Parse_error "vars")
        in
        let vs = vars Debugger.Var_set.empty in
        Hashtbl.replace stepped line vs;
        expect Rbrace;
        (match next () with
        | Comma -> entries ()
        | Rbrack -> ()
        | _ -> raise (Parse_error "entries"))
    | _ -> raise (Parse_error "entries")
  in
  entries ();
  expect Rbrace;
  { Debugger.stepped; steppable; hit_order; per_input_lines = [||] }

(* ------------------------------------------------------------------ *)
(* Offline trace comparison                                            *)

type diff = {
  lines_lost : int list;  (** stepped in [a] but not in [b] *)
  lines_gained : int list;
  vars_lost : (int * Ir.var_id list) list;
      (** per common line: variables visible in [a] but not [b] *)
}

(** [compare_traces a b] — the offline comparison the JSON export is
    for: what did [b] (e.g. an optimized build's session) lose relative
    to [a] (e.g. the O0 session)? *)
let compare_traces (a : Debugger.trace) (b : Debugger.trace) : diff =
  let lines t =
    Hashtbl.fold (fun l _ acc -> l :: acc) t.Debugger.stepped [] |> List.sort compare
  in
  let la = lines a and lb = lines b in
  let lines_lost = List.filter (fun l -> not (List.mem l lb)) la in
  let lines_gained = List.filter (fun l -> not (List.mem l la)) lb in
  let vars_lost =
    List.filter_map
      (fun l ->
        match (Hashtbl.find_opt a.Debugger.stepped l, Hashtbl.find_opt b.Debugger.stepped l) with
        | Some va, Some vb ->
            let lost = Debugger.Var_set.diff va vb in
            if Debugger.Var_set.is_empty lost then None
            else Some (l, Debugger.Var_set.elements lost)
        | _ -> None)
      la
  in
  { lines_lost; lines_gained; vars_lost }
