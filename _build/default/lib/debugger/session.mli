(** Interactive debugger sessions driven by command scripts — the
    analog of the paper's methodology of driving gdb in batch mode.

    Commands (gdb-flavoured): [break L] (optionally
    [break L if var OP int]), [tbreak L], [delete L],
    [run i1,i2,...], [continue]/[c], [step]/[s], [next]/[n], [finish],
    [print x]/[p x], [watch x], [unwatch x], [info locals], [info line],
    [info breakpoints], [info watchpoints], [backtrace]/[bt], [quit].
    Watchpoints are software watchpoints: the value is re-sampled from
    the debug info after every instruction, as gdb does without
    hardware debug registers. Variables are materialized from the
    binary's DWARF-like debug information; a variable whose location
    list does not cover the stop address prints [<optimized out>],
    exactly the artifact the paper measures. *)

type t

val create : Emit.binary -> entry:string -> t
(** A fresh session; the program is not running until [run]. *)

val exec : t -> string -> string list
(** Execute one command; returns its output lines. Unknown commands
    produce a one-line error, never an exception. *)

val script : Emit.binary -> entry:string -> string list -> string
(** [script bin ~entry commands] replays a batch script (the gdb [-x]
    analog) and returns the transcript: each command echoed behind a
    ["(dbg) "] prompt, followed by its output. *)
