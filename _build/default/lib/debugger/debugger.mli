(** Debug-trace extraction following the paper's protocol
    (Section III-A, step 2): temporary breakpoints on every line of the
    line table, one session over all inputs, recording each line's first
    hit and the variables the debug information can materialize there. *)

module Var_set : Set.S with type elt = Ir.var_id

type trace = {
  stepped : (int, Var_set.t) Hashtbl.t;  (** line -> variables at first hit *)
  steppable : int list;  (** lines present in the binary's line table *)
  hit_order : int list;  (** lines in first-hit order *)
  per_input_lines : int list array;
      (** lines newly observed per input, for corpus pruning *)
}

val trace :
  ?all_locations:bool ->
  Emit.binary ->
  entry:string ->
  inputs:int list list ->
  trace
(** [trace bin ~entry ~inputs] runs one debug session. [all_locations]
    (default [true], gdb's behaviour) arms every code location carrying a
    line; [false] arms only the lowest address (the ablation policy). *)

val stepped_lines : trace -> int list
(** Sorted lines stepped during the session. *)

val vars_at : trace -> int -> Var_set.t
(** Variables recorded at a line's first hit (empty if not stepped). *)
