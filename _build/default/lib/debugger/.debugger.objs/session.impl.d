lib/debugger/session.ml: Array Buffer Dwarfish Emit Hashtbl Ir List Mach Printf String Vm
