lib/debugger/debugger.mli: Emit Hashtbl Ir Set
