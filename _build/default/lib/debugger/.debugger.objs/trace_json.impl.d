lib/debugger/trace_json.ml: Buffer Char Debugger Hashtbl Ir List Printf String
