lib/debugger/debugger.ml: Array Dwarfish Emit Hashtbl Ir List Option Set Vm
