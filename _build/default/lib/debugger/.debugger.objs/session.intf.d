lib/debugger/session.mli: Emit
