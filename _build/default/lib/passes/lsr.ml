(** Loop strength reduction (clang [LoopStrengthReduce]).

    In a single-block self-loop with an induction variable
    [i = phi(init, i + k)], a multiplication [d = i * m] is replaced by a
    derived induction variable [j = phi(init * m, j + k * m)] — an add per
    iteration instead of a multiply. Uses of [d] (and debug bindings)
    re-point at [j], whose value is identical; when the original IV ends
    up used only by the deleted multiply, later DCE kills its phi and any
    variable bound to it goes optimized-out — the indirect loss the paper
    measures for this pass. *)

let run (fn : Ir.fn) =
  Ir.prune_unreachable fn;
  let reduced = ref 0 in
  let dom = Dom.compute fn in
  let loop_info = Loops.find fn dom in
  List.iter
    (fun (lp : Loops.loop) ->
      if
        Loops.Label_set.cardinal lp.Loops.body = 1
        && lp.Loops.latches = [ lp.Loops.header ]
      then begin
        let l = lp.Loops.header in
        let b = Ir.block fn l in
        (* Induction variables: i = phi(..., (l, Reg s)) with
           s = i + constant in this block. *)
        let ivs =
          List.filter_map
            (fun (p : Ir.phi) ->
              if List.length p.Ir.p_args <> 2 then None
              else
              match List.assoc_opt l p.Ir.p_args with
              | Some (Ir.Reg s) ->
                  List.find_map
                    (fun (i : Ir.instr) ->
                      match i.Ir.ik with
                      | Ir.Bin (Ir.Add, d, Ir.Reg x, Ir.Imm k)
                        when d = s && x = p.Ir.p_dst ->
                          Some (p, k)
                      | Ir.Bin (Ir.Add, d, Ir.Imm k, Ir.Reg x)
                        when d = s && x = p.Ir.p_dst ->
                          Some (p, k)
                      | _ -> None)
                    b.Ir.instrs
              | _ -> None)
            b.Ir.phis
        in
        if ivs <> [] then begin
          let subst = Hashtbl.create 4 in
          let new_phis = ref [] in
          let new_steps = ref [] in
          let pre_instrs = ref [] in
          b.Ir.instrs <-
            List.filter
              (fun (i : Ir.instr) ->
                match i.Ir.ik with
                | Ir.Bin (Ir.Mul, d, Ir.Reg x, Ir.Imm m)
                | Ir.Bin (Ir.Mul, d, Ir.Imm m, Ir.Reg x) -> (
                    match
                      List.find_opt (fun ((p : Ir.phi), _) -> p.Ir.p_dst = x) ivs
                    with
                    | Some (p, k) ->
                        (* init * m in the preheader (constant-folded when
                           possible); j accumulates by k * m. *)
                        let init =
                          List.find_map
                            (fun (pl, o) -> if pl <> l then Some o else None)
                            p.Ir.p_args
                        in
                        (match init with
                        | Some init ->
                            let j = Ir.fresh_reg fn in
                            let j_next = Ir.fresh_reg fn in
                            let init_op =
                              match init with
                              | Ir.Imm n -> Ir.Imm (n * m)
                              | Ir.Reg _ ->
                                  let r0 = Ir.fresh_reg fn in
                                  pre_instrs :=
                                    {
                                      Ir.ik = Ir.Bin (Ir.Mul, r0, init, Ir.Imm m);
                                      line = None;
                                    }
                                    :: !pre_instrs;
                                  Ir.Reg r0
                            in
                            new_phis :=
                              (j, init_op, j_next) :: !new_phis;
                            new_steps :=
                              {
                                Ir.ik =
                                  Ir.Bin (Ir.Add, j_next, Ir.Reg j, Ir.Imm (k * m));
                                line = None;
                              }
                              :: !new_steps;
                            Hashtbl.replace subst d (Ir.Reg j);
                            incr reduced;
                            false
                        | None -> true)
                    | None -> true)
                | _ -> true)
              b.Ir.instrs;
          if !new_phis <> [] then begin
            let ph = Loops.preheader fn lp in
            let phb = Ir.block fn ph in
            phb.Ir.instrs <- phb.Ir.instrs @ List.rev !pre_instrs;
            List.iter
              (fun (j, init_op, j_next) ->
                b.Ir.phis <-
                  b.Ir.phis
                  @ [
                      {
                        Ir.p_dst = j;
                        p_args = [ (ph, init_op); (l, Ir.Reg j_next) ];
                      };
                    ])
              (List.rev !new_phis);
            b.Ir.instrs <- b.Ir.instrs @ List.rev !new_steps;
            Putil.replace_uses fn subst
          end
        end
      end)
    loop_info.Loops.loops;
  !reduced
