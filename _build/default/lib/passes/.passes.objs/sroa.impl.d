lib/passes/sroa.ml: Array Hashtbl Ir List Mem2reg
