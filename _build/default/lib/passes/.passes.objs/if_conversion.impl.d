lib/passes/if_conversion.ml: Cleanup Hashtbl Ir List Option Putil
