lib/passes/simplify_cfg.ml: Cleanup Hashtbl If_conversion Ir List Putil
