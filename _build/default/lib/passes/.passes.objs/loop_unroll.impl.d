lib/passes/loop_unroll.ml: Hashtbl Ir List Putil
