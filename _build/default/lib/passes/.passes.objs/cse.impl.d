lib/passes/cse.ml: Dom Hashtbl Ir List Printf Putil String
