lib/passes/ipa_pure_const.ml: Hashtbl Ir Option
