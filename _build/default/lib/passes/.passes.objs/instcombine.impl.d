lib/passes/instcombine.ml: Cleanup Hashtbl Ir List Putil
