lib/passes/branch_prob.ml: Dom Hashtbl Ir Loops
