lib/passes/dce.ml: Hashtbl Ir List Putil
