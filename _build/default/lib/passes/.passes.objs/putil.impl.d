lib/passes/putil.ml: Array Hashtbl Ir List Option Printf
