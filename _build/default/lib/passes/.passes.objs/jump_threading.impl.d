lib/passes/jump_threading.ml: Cleanup Dom Hashtbl Ir List Putil
