lib/passes/licm.ml: Dom Hashtbl Ir List Loops Putil
