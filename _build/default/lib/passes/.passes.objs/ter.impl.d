lib/passes/ter.ml: Array Hashtbl Ir List Option Putil
