lib/passes/lsr.ml: Dom Hashtbl Ir List Loops Putil
