lib/passes/sink.ml: Dom Hashtbl Ir List Loops Putil
