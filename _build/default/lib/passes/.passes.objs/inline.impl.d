lib/passes/inline.ml: Cleanup Hashtbl Ir List Option Putil
