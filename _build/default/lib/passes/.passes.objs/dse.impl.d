lib/passes/dse.ml: Hashtbl Ir List Printf
