lib/passes/slp.ml: Array Hashtbl Ir List
