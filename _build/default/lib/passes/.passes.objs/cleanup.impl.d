lib/passes/cleanup.ml: Hashtbl Ir List Putil
