lib/passes/loop_rotate.ml: Cleanup Dom Hashtbl Ir List Loops Option Putil
