(** Shared helpers for the optimization passes. *)

(** [kill_bindings fn dead] marks every debug binding that references one
    of the [dead] registers as optimized-out — what a compiler does when
    it deletes a value it cannot salvage. *)
let kill_bindings (fn : Ir.fn) (dead : (Ir.reg, unit) Hashtbl.t) =
  Ir.iter_instrs fn (fun _ i ->
      match i.Ir.ik with
      | Ir.Dbg (v, Some (Ir.Reg r)) when Hashtbl.mem dead r ->
          i.Ir.ik <- Ir.Dbg (v, None)
      | _ -> ())

(** [replace_uses fn map] rewrites register uses (including debug
    bindings, which follow the value). *)
let replace_uses (fn : Ir.fn) (map : (Ir.reg, Ir.operand) Hashtbl.t) =
  if Hashtbl.length map > 0 then begin
    (* Chase chains so that a->b, b->c resolves a->c. *)
    let rec resolve o depth =
      match o with
      | Ir.Reg r when depth < 64 -> (
          match Hashtbl.find_opt map r with
          | Some o' -> resolve o' (depth + 1)
          | None -> o)
      | _ -> o
    in
    Ir.apply_subst fn (fun r ->
        match Hashtbl.find_opt map r with
        | Some o -> Some (resolve o 1)
        | None -> None)
  end

(** Registers defined anywhere in the function, with their use counts
    (debug bindings excluded). *)
let use_counts (fn : Ir.fn) =
  let counts = Hashtbl.create 64 in
  let bump r =
    Hashtbl.replace counts r (1 + Option.value ~default:0 (Hashtbl.find_opt counts r))
  in
  Ir.iter_blocks fn (fun b ->
      List.iter
        (fun (p : Ir.phi) ->
          List.iter (fun (_, o) -> List.iter bump (Ir.operand_uses o)) p.Ir.p_args)
        b.Ir.phis;
      List.iter
        (fun (i : Ir.instr) -> List.iter bump (Ir.real_uses_of_ikind i.Ir.ik))
        b.Ir.instrs;
      List.iter bump (Ir.term_uses b.Ir.term));
  counts

(** Is the instruction free of side effects (deletable when its results
    are unused)? [pure_calls] lists functions proven pure. *)
let pure_ikind ?(pure_calls = fun _ -> false) = function
  | Ir.Bin _ | Ir.Un _ | Ir.Mov _ | Ir.Select _ | Ir.Vec _ | Ir.Load _ -> true
  | Ir.Call (_, f, _) -> pure_calls f
  | Ir.Store _ | Ir.Input _ | Ir.Eof _ | Ir.Output _ | Ir.Dbg _ -> false

(** A key identifying the value computed by a pure instruction, for value
    numbering; [None] when the instruction is not numberable. Commutative
    operands are put in a canonical order. *)
let value_key = function
  | Ir.Bin (op, _, a, b) ->
      let a, b = if Ir.commutative op && b < a then (b, a) else (a, b) in
      Some (Printf.sprintf "bin:%s:%s:%s" (Ir.binop_name op)
              (Ir.operand_to_string a) (Ir.operand_to_string b))
  | Ir.Un (op, _, a) ->
      Some (Printf.sprintf "un:%s:%s" (Ir.unop_name op) (Ir.operand_to_string a))
  | Ir.Select (_, c, a, b) ->
      Some (Printf.sprintf "sel:%s:%s:%s" (Ir.operand_to_string c)
              (Ir.operand_to_string a) (Ir.operand_to_string b))
  | Ir.Mov (_, a) -> Some (Printf.sprintf "mov:%s" (Ir.operand_to_string a))
  | _ -> None

(** Clone an instruction kind, renaming definitions through [fresh_def]
    and uses through [map_use]. *)
let clone_ikind ~fresh_def ~map_use (ik : Ir.ikind) : Ir.ikind =
  let mapped = Ir.subst_uses map_use ik in
  match mapped with
  | Ir.Bin (op, d, a, b) -> Ir.Bin (op, fresh_def d, a, b)
  | Ir.Un (op, d, a) -> Ir.Un (op, fresh_def d, a)
  | Ir.Mov (d, a) -> Ir.Mov (fresh_def d, a)
  | Ir.Load (d, a) -> Ir.Load (fresh_def d, a)
  | Ir.Store _ | Ir.Output _ | Ir.Dbg _ -> mapped
  | Ir.Call (d, f, args) -> Ir.Call (Option.map fresh_def d, f, args)
  | Ir.Input d -> Ir.Input (fresh_def d)
  | Ir.Eof d -> Ir.Eof (fresh_def d)
  | Ir.Select (d, c, a, b) -> Ir.Select (fresh_def d, c, a, b)
  | Ir.Vec (op, lanes) ->
      Ir.Vec (op, Array.map (fun (d, a, b) -> (fresh_def d, a, b)) lanes)

(** Blocks of a function whose register definitions include [r]. *)
let def_site (fn : Ir.fn) r =
  let found = ref None in
  Ir.iter_blocks fn (fun b ->
      List.iter
        (fun (p : Ir.phi) -> if p.Ir.p_dst = r then found := Some (b, `Phi p))
        b.Ir.phis;
      List.iter
        (fun (i : Ir.instr) ->
          if List.mem r (Ir.def_of_ikind i.Ir.ik) then found := Some (b, `Instr i))
        b.Ir.instrs);
  !found
