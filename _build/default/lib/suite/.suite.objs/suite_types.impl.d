lib/suite/suite_types.ml: List Minic Printf
