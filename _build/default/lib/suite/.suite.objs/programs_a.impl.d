lib/suite/programs_a.ml: Suite_types
