lib/suite/programs_c.ml: Suite_types
