lib/suite/selfcomp.ml: List Suite_types Util
