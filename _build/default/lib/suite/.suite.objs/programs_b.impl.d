lib/suite/programs_b.ml: Suite_types
