lib/suite/synth.ml: Buffer List Printf String Suite_types Util
