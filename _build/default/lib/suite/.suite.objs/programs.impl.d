lib/suite/programs.ml: List Programs_a Programs_b Programs_c Suite_types
