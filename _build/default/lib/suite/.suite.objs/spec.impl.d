lib/suite/spec.ml: List Suite_types
