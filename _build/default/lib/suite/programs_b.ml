(** Test-suite programs, batch B: libmpeg2, libpcap, libpng, libssh. *)

open Suite_types

(* Dequantization + a butterfly transform over 8-sample rows, the inner
   loop shape of an MPEG-2 block decoder. *)
let libmpeg2 =
  {
    p_name = "libmpeg2";
    p_harnesses =
      [
        {
          h_name = "block";
          h_entry = "fuzz_block";
          h_seeds =
            [
              [ 1; 16; 8; 4; 2; 1; 0; 0; 0 ];
              [ 2; 100; 50; 25; 12; 6; 3; 1; 1 ];
            ];
        };
      ];
    p_source =
      {|
int coeffs[64];
int quant[8];

int init_quant(int scale) {
  int i = 0;
  while (i < 8) {
    quant[i] = 8 + i * scale;
    i = i + 1;
  }
  return 0;
}

int read_block() {
  int nonzero = 0;
  int i = 0;
  while (i < 64) {
    if (eof()) {
      coeffs[i] = 0;
    } else {
      coeffs[i] = input();
      if (coeffs[i] != 0) {
        nonzero = nonzero + 1;
      }
    }
    i = i + 1;
  }
  return nonzero;
}

int dequantize() {
  int row = 0;
  while (row < 8) {
    int col = 0;
    while (col < 8) {
      int idx = row * 8 + col;
      coeffs[idx] = coeffs[idx] * quant[col];
      col = col + 1;
    }
    row = row + 1;
  }
  return 0;
}

int butterfly_row(int base) {
  int t0 = coeffs[base] + coeffs[base + 4];
  int t1 = coeffs[base] - coeffs[base + 4];
  int t2 = coeffs[base + 2] + coeffs[base + 6];
  int t3 = coeffs[base + 2] - coeffs[base + 6];
  coeffs[base] = t0 + t2;
  coeffs[base + 2] = t1 + t3;
  coeffs[base + 4] = t1 - t3;
  coeffs[base + 6] = t0 - t2;
  return coeffs[base];
}

int clamp(int v) {
  if (v > 255) { return 255; }
  if (v < 0) { return 0; }
  return v;
}

int block_energy() {
  int total = 0;
  int i = 0;
  while (i < 64) {
    int v = coeffs[i];
    total = total + v * v;
    i = i + 1;
  }
  return total;
}

int block_power() {
  int total = 0;
  int i = 0;
  while (i < 64) {
    int v = coeffs[i];
    total = total + v * v;
    i = i + 1;
  }
  return total;
}

int fuzz_block() {
  int scale = (input() & 7) + 1;
  init_quant(scale);
  int nonzero = read_block();
  dequantize();
  int row = 0;
  int acc = 0;
  while (row < 8) {
    acc = acc + butterfly_row(row * 8);
    row = row + 1;
  }
  int i = 0;
  int clamped = 0;
  while (i < 64) {
    int v = clamp(coeffs[i] >> 4);
    clamped = clamped + v;
    i = i + 1;
  }
  int energy = block_energy();
  int power = block_power();
  output(nonzero);
  output(acc);
  output(clamped);
  output(energy - power);
  return clamped;
}
|};
  }

(* A classic BPF-style packet-filter virtual machine: load a small
   program, run it over a packet, accept or reject. *)
let libpcap =
  {
    p_name = "libpcap";
    p_harnesses =
      [
        {
          h_name = "filter";
          h_entry = "fuzz_filter";
          h_seeds =
            [
              [ 3; 0; 2; 1; 40; 2; 4; 0; 6; 17; 99; 34 ];
              [ 2; 0; 0; 3; 0; 0; 8; 1; 2; 3 ];
              [ 5; 0; 1; 1; 6; 2; 2; 3; 4; 1; 3; 0; 0; 7; 7; 7; 7; 7 ];
            ];
        };
      ];
    p_source =
      {|
int prog_op[16];
int prog_arg[16];
int prog_len;
int packet[32];
int packet_len;

int load_program() {
  prog_len = input() & 15;
  int i = 0;
  while (i < prog_len && !eof()) {
    prog_op[i] = input() & 7;
    prog_arg[i] = input() & 31;
    i = i + 1;
  }
  prog_len = i;
  return prog_len;
}

int load_packet() {
  packet_len = 0;
  while (!eof() && packet_len < 32) {
    packet[packet_len] = input() & 255;
    packet_len = packet_len + 1;
  }
  return packet_len;
}

int run_filter() {
  int acc = 0;
  int x = 0;
  int pc = 0;
  int steps = 0;
  while (pc < prog_len && steps < 64) {
    int op = prog_op[pc];
    int arg = prog_arg[pc];
    pc = pc + 1;
    steps = steps + 1;
    if (op == 0) {
      if (arg < packet_len) {
        acc = packet[arg];
      } else {
        return 0;
      }
    }
    if (op == 1) {
      acc = acc + arg;
    }
    if (op == 2) {
      acc = acc & arg;
    }
    if (op == 3) {
      x = acc;
    }
    if (op == 4) {
      if (acc == arg) {
        pc = pc + 1;
      }
    }
    if (op == 5) {
      if (acc > x) {
        pc = pc + arg;
      }
    }
    if (op == 6) {
      return acc;
    }
    if (op == 7) {
      acc = acc ^ x;
    }
  }
  return acc;
}

int packet_checksum() {
  int acc = 7;
  int i = 0;
  while (i < 32) {
    acc = acc * 31 + packet[i];
    acc = acc ^ (acc >> 7);
    i = i + 1;
  }
  return acc & 65535;
}

int packet_digest() {
  int acc = 7;
  int i = 0;
  while (i < 32) {
    acc = acc * 31 + packet[i];
    acc = acc ^ (acc >> 7);
    i = i + 1;
  }
  return acc & 65535;
}

int fuzz_filter() {
  load_program();
  load_packet();
  int before = packet_checksum();
  int verdict = run_filter();
  int after = packet_digest();
  if (before != after) {
    output(-2);
  }
  int unused_digest = packet_checksum() + packet_digest();
  unused_digest = unused_digest & 1;
  if (verdict > 0) {
    output(1);
    output((verdict + unused_digest - unused_digest) & 255);
  } else {
    output(0);
  }
  return verdict;
}
|};
  }

(* PNG scanline defiltering (None/Sub/Up/Average/Paeth), libpng's most
   exercised decode path. *)
let libpng =
  {
    p_name = "libpng";
    p_harnesses =
      [
        {
          h_name = "defilter";
          h_entry = "fuzz_defilter";
          h_seeds =
            [
              [ 2; 0; 10; 20; 30; 40; 1; 5; 5; 5; 5 ];
              [ 3; 4; 9; 9; 9; 9; 2; 1; 2; 3; 4; 0; 7; 8; 9; 1 ];
            ];
        };
        {
          h_name = "chunk";
          h_entry = "fuzz_chunk";
          h_seeds = [ [ 73; 72; 68; 82; 4; 1; 2; 3; 4 ]; [ 73; 68; 65; 84; 2; 9; 9 ] ];
        };
      ];
    p_source =
      {|
int prev_row[16];
int cur_row[16];
int row_width;

int abs_val(int v) {
  if (v < 0) {
    return -v;
  }
  return v;
}

int paeth_predict(int a, int b, int c) {
  int p = a + b - c;
  int pa = abs_val(p - a);
  int pb = abs_val(p - b);
  int pc = abs_val(p - c);
  if (pa <= pb && pa <= pc) {
    return a;
  }
  if (pb <= pc) {
    return b;
  }
  return c;
}

int defilter_row(int filter) {
  int x = 0;
  int sum = 0;
  while (x < row_width) {
    int raw = 0;
    if (!eof()) {
      raw = input() & 255;
    }
    int left = 0;
    int up = prev_row[x];
    int corner = 0;
    if (x > 0) {
      left = cur_row[x - 1];
      corner = prev_row[x - 1];
    }
    int value = raw;
    if (filter == 1) {
      value = (raw + left) & 255;
    }
    if (filter == 2) {
      value = (raw + up) & 255;
    }
    if (filter == 3) {
      value = (raw + ((left + up) / 2)) & 255;
    }
    if (filter == 4) {
      value = (raw + paeth_predict(left, up, corner)) & 255;
    }
    cur_row[x] = value;
    sum = sum + value;
    x = x + 1;
  }
  return sum;
}

int commit_row() {
  int x = 0;
  while (x < row_width) {
    prev_row[x] = cur_row[x];
    x = x + 1;
  }
  return 0;
}

int fuzz_defilter() {
  row_width = (input() & 7) + 4;
  if (row_width > 16) {
    row_width = 16;
  }
  int i = 0;
  while (i < 16) {
    prev_row[i] = 0;
    i = i + 1;
  }
  int rows = 0;
  int checksum = 0;
  while (!eof() && rows < 12) {
    int filter = input() & 7;
    if (filter > 4) {
      output(-1);
      return -1;
    }
    checksum = checksum + defilter_row(filter);
    commit_row();
    rows = rows + 1;
  }
  output(rows);
  output(checksum);
  return checksum;
}

int interlace_pass_width(int pass, int width) {
  if (pass == 0) {
    return (width + 7) / 8;
  }
  if (pass == 1) {
    return (width + 3) / 8;
  }
  if (pass == 2) {
    return (width + 3) / 4;
  }
  if (pass == 3) {
    return (width + 1) / 4;
  }
  if (pass == 4) {
    return (width + 1) / 2;
  }
  if (pass == 5) {
    return width / 2;
  }
  return width;
}

int gamma_correct(int value, int gamma_x100) {
  int v = value & 255;
  int out = v;
  if (gamma_x100 < 100) {
    out = (v * v) / 255;
  }
  if (gamma_x100 > 100) {
    out = 255 - (((255 - v) * (255 - v)) / 255);
  }
  return out;
}

int chunk_type(int a, int b, int c, int d) {
  return ((a & 255) << 24) | ((b & 255) << 16) | ((c & 255) << 8) | (d & 255);
}

int fuzz_chunk() {
  int seen_header = 0;
  int data_bytes = 0;
  int chunks = 0;
  while (!eof() && chunks < 8) {
    int t = chunk_type(input(), input(), input(), input());
    int len = input() & 15;
    int k = 0;
    while (k < len && !eof()) {
      input();
      data_bytes = data_bytes + 1;
      k = k + 1;
    }
    if (t == 1229472850) {
      seen_header = 1;
    }
    chunks = chunks + 1;
  }
  output(seen_header);
  output(data_bytes);
  return chunks;
}
|};
  }

(* A toy stream cipher (xorshift keystream) plus a polynomial MAC over
   the ciphertext — libssh's packet-protection shape. *)
let libssh =
  {
    p_name = "libssh";
    p_harnesses =
      [
        {
          h_name = "decrypt";
          h_entry = "fuzz_decrypt";
          h_seeds =
            [
              [ 42; 5; 11; 22; 33; 44; 55 ];
              [ 7; 3; 100; 100; 100 ];
            ];
        };
        {
          h_name = "kex";
          h_entry = "fuzz_kex";
          h_seeds = [ [ 5; 9 ]; [ 123; 45 ] ];
        };
      ];
    p_source =
      {|
int stream_state;

int stream_init(int key) {
  stream_state = key * 2654435761 + 1;
  return stream_state;
}

int stream_next() {
  int s = stream_state;
  s = s ^ (s << 13);
  s = s ^ (s >> 7);
  s = s ^ (s << 17);
  stream_state = s;
  return s & 255;
}

int mac_update(int mac, int byte) {
  return (mac * 31 + byte) % 1000003;
}

int fuzz_decrypt() {
  int key = input();
  int declared = input() & 63;
  stream_init(key);
  int mac = 0;
  int plain_sum = 0;
  int got = 0;
  while (got < declared && !eof()) {
    int cipher_byte = input() & 255;
    int ks = stream_next();
    int plain = cipher_byte ^ ks;
    mac = mac_update(mac, cipher_byte);
    plain_sum = plain_sum + plain;
    got = got + 1;
  }
  if (got != declared) {
    output(-1);
    return -1;
  }
  output(mac);
  output(plain_sum);
  return mac;
}

int modpow(int base, int exp, int m) {
  if (m <= 1) {
    return 0;
  }
  int result = 1;
  int b = base % m;
  int e = exp & 1023;
  while (e > 0) {
    if (e & 1) {
      result = (result * b) % m;
    }
    b = (b * b) % m;
    e = e >> 1;
  }
  return result;
}

int host_key_fingerprint(int key) {
  int h = key;
  int round = 0;
  while (round < 16) {
    h = h * 33 + round;
    h = h ^ (h >> 11);
    round = round + 1;
  }
  return h & 16777215;
}

int server_validate_banner(int version, int flags) {
  if (version < 1) {
    return -1;
  }
  if (version > 2) {
    return -2;
  }
  int score = 0;
  if (flags & 1) {
    score = score + 10;
  }
  if (flags & 2) {
    score = score + 20;
  }
  if (flags & 4) {
    score = score - 5;
  }
  return score;
}

int server_pick_cipher(int offered) {
  int best = -1;
  int bit = 0;
  while (bit < 8) {
    if (offered & (1 << bit)) {
      best = bit;
    }
    bit = bit + 1;
  }
  if (best < 0) {
    return 0;
  }
  return best + 100;
}

int server_session_cleanup(int handles) {
  int closed = 0;
  while (handles > 0) {
    handles = handles - 1;
    closed = closed + 1;
    stream_state = stream_state ^ handles;
  }
  return closed;
}

int fuzz_kex() {
  int secret = (input() & 255) + 2;
  int peer = (input() & 255) + 2;
  int generator = 5;
  int modulus = 1000000007;
  int mine = modpow(generator, secret, modulus);
  int shared = modpow(peer, secret, modulus);
  output(mine);
  output(shared);
  return shared;
}
|};
  }

let all = [ libmpeg2; libpcap; libpng; libssh ]
