(** Test-suite programs, batch C: libyaml, lighttpd, wasm3, zlib,
    zydis. *)

open Suite_types

(* A YAML-ish scalar/sequence tokenizer with indentation tracking. *)
let libyaml =
  {
    p_name = "libyaml";
    p_harnesses =
      [
        {
          h_name = "scan";
          h_entry = "fuzz_scan";
          h_seeds =
            [
              (* "- a\n- b\nkey: v\n" in a small alphabet: 1=dash 2=space
                 3=alpha 4=colon 5=newline *)
              [ 1; 2; 3; 5; 1; 2; 3; 5; 3; 4; 2; 3; 5 ];
              [ 2; 2; 1; 2; 3; 5 ];
              [ 3; 3; 3; 4; 2; 3; 3; 5; 5 ];
            ];
        };
      ];
    p_source =
      {|
int tokens_emitted;
int max_indent;

int classify(int c) {
  int k = c & 7;
  if (k == 1) { return 1; }
  if (k == 2) { return 2; }
  if (k == 4) { return 4; }
  if (k == 5) { return 5; }
  return 3;
}

int emit_token(int kind, int payload) {
  output(kind * 100 + (payload & 63));
  tokens_emitted = tokens_emitted + 1;
  return tokens_emitted;
}

int scan_line(int first) {
  int indent = 0;
  int c = first;
  while (c == 2 && !eof()) {
    indent = indent + 1;
    c = classify(input());
  }
  if (indent > max_indent) {
    max_indent = indent;
  }
  if (c == 1) {
    emit_token(1, indent);
    if (!eof()) {
      c = classify(input());
    }
  }
  int scalar_len = 0;
  int saw_colon = 0;
  while (c != 5 && !eof()) {
    if (c == 3) {
      scalar_len = scalar_len + 1;
    }
    if (c == 4) {
      saw_colon = 1;
    }
    c = classify(input());
  }
  if (saw_colon) {
    emit_token(2, scalar_len);
  } else {
    if (scalar_len > 0) {
      emit_token(3, scalar_len);
    }
  }
  return indent;
}

int fuzz_scan() {
  tokens_emitted = 0;
  max_indent = 0;
  int lines = 0;
  while (!eof() && lines < 40) {
    int first = classify(input());
    scan_line(first);
    lines = lines + 1;
  }
  output(tokens_emitted);
  output(max_indent);
  return tokens_emitted;
}
|};
  }

(* An HTTP/1.0-flavored request-line and header parser state machine. *)
let lighttpd =
  {
    p_name = "lighttpd";
    p_harnesses =
      [
        {
          h_name = "request";
          h_entry = "fuzz_request";
          h_seeds =
            [
              (* method=1(GET) path tokens then 0 terminator, headers *)
              [ 1; 7; 7; 7; 0; 2; 5; 0; 3; 9; 0; 0 ];
              [ 2; 7; 0; 0 ];
              [ 9; 7; 0; 0 ];
            ];
        };
      ];
    p_source =
      {|
int known_method(int m) {
  if (m == 1) { return 1; }
  if (m == 2) { return 1; }
  if (m == 3) { return 1; }
  return 0;
}

int parse_path() {
  int len = 0;
  int dots = 0;
  int c = input();
  while (c != 0 && !eof() && len < 32) {
    if (c == 46) {
      dots = dots + 1;
    }
    len = len + 1;
    c = input();
  }
  if (dots >= 2) {
    return -1;
  }
  return len;
}

int parse_header() {
  int name = input();
  if (name == 0) {
    return 0;
  }
  int value_sum = 0;
  int c = input();
  while (c != 0 && !eof()) {
    value_sum = value_sum + (c & 255);
    c = input();
  }
  if (name == 5) {
    return 1000 + value_sum;
  }
  return 1;
}

int error_page_length(int status) {
  int base = 48;
  if (status == 404) {
    return base + 21;
  }
  if (status == 403) {
    return base + 17;
  }
  if (status == 413) {
    return base + 30;
  }
  if (status >= 500) {
    return base + 25;
  }
  return base;
}

int config_merge_flags(int global_flags, int vhost_flags) {
  int merged = global_flags | vhost_flags;
  if (vhost_flags & 8) {
    merged = merged & ~1;
  }
  if (vhost_flags & 16) {
    merged = merged | 2;
  }
  return merged;
}

int fuzz_request() {
  int method = input() & 15;
  if (!known_method(method)) {
    output(405);
    return 405;
  }
  int path_len = parse_path();
  if (path_len < 0) {
    output(403);
    return 403;
  }
  int content_length = 0;
  int headers = 0;
  int h = 1;
  while (h != 0 && headers < 16 && !eof()) {
    h = parse_header();
    if (h >= 1000) {
      content_length = h - 1000;
    }
    if (h != 0) {
      headers = headers + 1;
    }
  }
  int status = 200;
  if (path_len == 0) {
    status = 404;
  }
  if (content_length > 100) {
    status = 413;
  }
  output(status);
  output(headers);
  return status;
}
|};
  }

(* A miniature WebAssembly-flavored stack machine interpreter. *)
let wasm3 =
  {
    p_name = "wasm3";
    p_harnesses =
      [
        {
          h_name = "exec";
          h_entry = "fuzz_exec";
          h_seeds =
            [
              (* push 4, push 5, add, print, halt *)
              [ 1; 4; 1; 5; 2; 7; 0 ];
              [ 1; 10; 1; 3; 4; 7; 0 ];
              [ 1; 1; 6; 2; 5; 250; 7; 0 ];
            ];
        };
      ];
    p_source =
      {|
int stack[16];
int sp;

int push(int v) {
  if (sp >= 16) {
    return 0;
  }
  stack[sp] = v;
  sp = sp + 1;
  return 1;
}

int pop() {
  if (sp <= 0) {
    return 0;
  }
  sp = sp - 1;
  return stack[sp];
}

int binop_step(int op) {
  int b = pop();
  int a = pop();
  int r = 0;
  if (op == 2) {
    r = a + b;
  }
  if (op == 3) {
    r = a - b;
  }
  if (op == 4) {
    r = a * b;
  }
  if (op == 8) {
    r = a / (b | 1);
  }
  return push(r);
}

int fuzz_exec() {
  sp = 0;
  int steps = 0;
  int running = 1;
  while (running && steps < 150 && !eof()) {
    int op = input() & 15;
    steps = steps + 1;
    if (op == 0) {
      running = 0;
    }
    if (op == 1) {
      push(input());
    }
    if (op == 2 || op == 3 || op == 4 || op == 8) {
      binop_step(op);
    }
    if (op == 5) {
      int n = input() & 200;
      int i = 0;
      int acc = 0;
      while (i < n) {
        acc = acc + i;
        i = i + 1;
      }
      push(acc);
    }
    if (op == 6) {
      int top = pop();
      push(top);
      push(top);
    }
    if (op == 7) {
      output(pop());
    }
  }
  output(sp);
  output(steps);
  return steps;
}
|};
  }

(* LZ77-with-small-window matching plus an Adler-ish checksum: zlib's
   deflate front end in miniature. *)
let zlib =
  {
    p_name = "zlib";
    p_harnesses =
      [
        {
          h_name = "deflate";
          h_entry = "fuzz_deflate";
          h_seeds =
            [
              [ 1; 2; 3; 1; 2; 3; 1; 2; 3 ];
              [ 9; 9; 9; 9; 9; 9; 9; 9 ];
              [ 1; 2; 3; 4; 5; 6; 7; 8 ];
            ];
        };
      ];
    p_source =
      {|
int window[32];
int wpos;
int adler_a;
int adler_b;

int adler_push(int byte) {
  adler_a = (adler_a + (byte & 255)) % 65521;
  adler_b = (adler_b + adler_a) % 65521;
  return adler_b;
}

int find_match(int byte) {
  int best = -1;
  int i = 0;
  while (i < 32) {
    if (window[i] == byte) {
      best = i;
    }
    i = i + 1;
  }
  return best;
}

int window_push(int byte) {
  window[wpos & 31] = byte;
  wpos = wpos + 1;
  return wpos;
}

int fuzz_deflate() {
  wpos = 0;
  adler_a = 1;
  adler_b = 0;
  int i = 0;
  while (i < 32) {
    window[i] = -1;
    i = i + 1;
  }
  int literals = 0;
  int matches = 0;
  int count = 0;
  while (!eof() && count < 200) {
    int byte = input() & 255;
    adler_push(byte);
    int hit = find_match(byte);
    if (hit >= 0) {
      matches = matches + 1;
      output(256 + hit);
    } else {
      literals = literals + 1;
      output(byte);
    }
    window_push(byte);
    count = count + 1;
  }
  output(literals);
  output(matches);
  output((adler_b << 16) | adler_a);
  return matches;
}
|};
  }

(* An x86-flavored instruction-length decoder: prefixes, opcode map,
   modrm/sib, immediate widths — zydis's core loop. *)
let zydis =
  {
    p_name = "zydis";
    p_harnesses =
      [
        {
          h_name = "decode";
          h_entry = "fuzz_decode";
          h_seeds =
            [
              [ 102; 1; 192 ];
              [ 15; 5 ];
              [ 184; 1; 2; 3; 4; 144 ];
            ];
        };
      ];
    p_source =
      {|
int insn_count;
int byte_count;

int is_prefix(int b) {
  if (b == 102) { return 1; }
  if (b == 103) { return 1; }
  if (b == 240) { return 1; }
  if (b == 243) { return 1; }
  return 0;
}

int imm_width(int opcode) {
  if (opcode >= 184 && opcode < 192) {
    return 4;
  }
  if (opcode == 104) {
    return 4;
  }
  if (opcode == 106) {
    return 1;
  }
  if (opcode >= 112 && opcode < 128) {
    return 1;
  }
  return 0;
}

int has_modrm(int opcode) {
  if (opcode < 64) {
    return (opcode & 7) < 4;
  }
  if (opcode >= 128 && opcode < 144) {
    return 1;
  }
  return 0;
}

int read_byte() {
  byte_count = byte_count + 1;
  return input() & 255;
}

int decode_one() {
  int prefixes = 0;
  int b = read_byte();
  while (is_prefix(b) && prefixes < 4 && !eof()) {
    prefixes = prefixes + 1;
    b = read_byte();
  }
  int two_byte = 0;
  if (b == 15) {
    two_byte = 1;
    b = read_byte();
  }
  int length = 1 + prefixes + two_byte;
  if (has_modrm(b)) {
    int modrm = read_byte();
    length = length + 1;
    int mode = (modrm >> 6) & 3;
    int rm = modrm & 7;
    if (mode != 3 && rm == 4) {
      read_byte();
      length = length + 1;
    }
    if (mode == 1) {
      read_byte();
      length = length + 1;
    }
    if (mode == 2) {
      read_byte();
      read_byte();
      read_byte();
      read_byte();
      length = length + 4;
    }
  }
  int imm = imm_width(b);
  int k = 0;
  while (k < imm && !eof()) {
    read_byte();
    length = length + 1;
    k = k + 1;
  }
  insn_count = insn_count + 1;
  return length;
}

int stats_mix() {
  int h = insn_count * 73 + byte_count;
  int k = 0;
  while (k < 6) {
    h = (h ^ (h >> 3)) * 131;
    k = k + 1;
  }
  return h & 16383;
}

int stats_hash() {
  int h = insn_count * 73 + byte_count;
  int k = 0;
  while (k < 6) {
    h = (h ^ (h >> 3)) * 131;
    k = k + 1;
  }
  return h & 16383;
}

int fuzz_decode() {
  insn_count = 0;
  byte_count = 0;
  int total_len = 0;
  while (!eof() && insn_count < 64) {
    total_len = total_len + decode_one();
  }
  int mix = stats_mix();
  int hash = stats_hash();
  output(insn_count);
  output(total_len);
  output(byte_count);
  output(mix - hash);
  return insn_count;
}
|};
  }

let all = [ libyaml; lighttpd; wasm3; zlib; zydis ]
