(** The large AutoFDO workload (paper Figure 4): where the paper
    self-compiles clang, we run a MiniC-written mini-compiler over many
    generated compilation units. The program tokenizes, parses
    (recursive descent with precedence), constant-folds, emits stack
    code, and peephole-optimizes it — a compiler-shaped hot path.

    Input format: a sequence of units, each a token stream terminated by
    0; tokens are 1=number (followed by its value), 2=+, 3=*, 4=-,
    5=( , 6=) , 7=identifier (followed by slot index). *)

open Suite_types

let source =
  {|
int unit_toks[128];
int unit_vals[128];
int unit_len;
int cursor;
int code_op[256];
int code_arg[256];
int code_len;
int env[8];
int units_done;

int read_unit() {
  unit_len = 0;
  int t = input();
  while (t != 0 && !eof() && unit_len < 126) {
    unit_toks[unit_len] = t & 7;
    if ((t & 7) == 1 || (t & 7) == 7) {
      unit_vals[unit_len] = input();
    } else {
      unit_vals[unit_len] = 0;
    }
    unit_len = unit_len + 1;
    t = input();
  }
  return unit_len;
}

int emit(int op, int arg) {
  if (code_len >= 256) {
    return 0;
  }
  code_op[code_len] = op;
  code_arg[code_len] = arg;
  code_len = code_len + 1;
  return 1;
}

int peek_tok() {
  if (cursor >= unit_len) {
    return 0;
  }
  return unit_toks[cursor];
}

int parse_primary() {
  int t = peek_tok();
  if (t == 1) {
    int v = unit_vals[cursor];
    cursor = cursor + 1;
    emit(1, v);
    return 1;
  }
  if (t == 7) {
    int slot = unit_vals[cursor] & 7;
    cursor = cursor + 1;
    emit(2, slot);
    return 1;
  }
  if (t == 5) {
    cursor = cursor + 1;
    parse_sum();
    if (peek_tok() == 6) {
      cursor = cursor + 1;
    }
    return 1;
  }
  cursor = cursor + 1;
  emit(1, 0);
  return 0;
}

int parse_product() {
  parse_primary();
  while (peek_tok() == 3) {
    cursor = cursor + 1;
    parse_primary();
    emit(4, 0);
  }
  return 1;
}

int parse_sum() {
  parse_product();
  int t = peek_tok();
  while (t == 2 || t == 4) {
    cursor = cursor + 1;
    parse_product();
    if (t == 2) {
      emit(3, 0);
    } else {
      emit(5, 0);
    }
    t = peek_tok();
  }
  return 1;
}

int fold_constants() {
  int folded = 0;
  int changed = 1;
  while (changed) {
    changed = 0;
    int i = 2;
    while (i < code_len) {
      int is_binop = 0;
      if (code_op[i] >= 3 && code_op[i] <= 5) {
        is_binop = 1;
      }
      if (is_binop && code_op[i - 1] == 1 && code_op[i - 2] == 1) {
        int a = code_arg[i - 2];
        int b = code_arg[i - 1];
        int r = 0;
        if (code_op[i] == 3) {
          r = a + b;
        }
        if (code_op[i] == 4) {
          r = (a * b) % 1000003;
        }
        if (code_op[i] == 5) {
          r = a - b;
        }
        code_op[i - 2] = 1;
        code_arg[i - 2] = r;
        int j = i + 1;
        while (j < code_len) {
          code_op[j - 2] = code_op[j];
          code_arg[j - 2] = code_arg[j];
          j = j + 1;
        }
        code_len = code_len - 2;
        folded = folded + 1;
        changed = 1;
      } else {
        i = i + 1;
      }
    }
  }
  return folded;
}

int peephole() {
  int removed = 0;
  int i = 0;
  while (i + 1 < code_len) {
    int kill = 0;
    if (code_op[i] == 1 && code_arg[i] == 0 && code_op[i + 1] == 3) {
      kill = 1;
    }
    if (code_op[i] == 1 && code_arg[i] == 1 && code_op[i + 1] == 4) {
      kill = 1;
    }
    if (kill) {
      int j = i + 2;
      while (j < code_len) {
        code_op[j - 2] = code_op[j];
        code_arg[j - 2] = code_arg[j];
        j = j + 1;
      }
      code_len = code_len - 2;
      removed = removed + 1;
    } else {
      i = i + 1;
    }
  }
  return removed;
}

int execute() {
  int stack[32];
  int sp = 0;
  int pc = 0;
  while (pc < code_len) {
    int op = code_op[pc];
    int arg = code_arg[pc];
    if (op == 1) {
      if (sp < 32) {
        stack[sp] = arg;
        sp = sp + 1;
      }
    }
    if (op == 2) {
      if (sp < 32) {
        stack[sp] = env[arg];
        sp = sp + 1;
      }
    }
    if (op >= 3 && op <= 5) {
      if (sp >= 2) {
        int b = stack[sp - 1];
        int a = stack[sp - 2];
        int r = 0;
        if (op == 3) {
          r = a + b;
        }
        if (op == 4) {
          r = (a * b) % 1000003;
        }
        if (op == 5) {
          r = a - b;
        }
        stack[sp - 2] = r;
        sp = sp - 1;
      }
    }
    pc = pc + 1;
  }
  if (sp > 0) {
    return stack[sp - 1];
  }
  return 0;
}

int compile_unit() {
  cursor = 0;
  code_len = 0;
  parse_sum();
  int folded = fold_constants();
  int removed = peephole();
  int value = execute();
  units_done = units_done + 1;
  return value + folded + removed;
}

int main() {
  int i = 0;
  while (i < 8) {
    env[i] = i * 3 + 1;
    i = i + 1;
  }
  units_done = 0;
  int checksum = 0;
  while (!eof() && units_done < 150) {
    int n = read_unit();
    if (n > 0) {
      checksum = (checksum + compile_unit()) % 1000003;
    }
  }
  output(units_done);
  output(checksum);
  return checksum;
}
|}

let program =
  {
    p_name = "selfcomp";
    p_source = source;
    p_harnesses = [ { h_name = "units"; h_entry = "main"; h_seeds = [] } ];
  }

(** Generate [n] compilation units in the program's token format —
    seeded, so the Figure 4 workload is reproducible. *)
let workload ~seed ~units : int list =
  let rng = Util.Rng.create seed in
  let buf = ref [] in
  let push v = buf := v :: !buf in
  for _ = 1 to units do
    let toks = 8 + Util.Rng.int rng 40 in
    let depth = ref 0 in
    let want_operand = ref true in
    for _ = 1 to toks do
      if !want_operand then
        if Util.Rng.chance rng 1 5 && !depth < 3 then begin
          push 5;
          incr depth
        end
        else if Util.Rng.chance rng 1 4 then begin
          push 7;
          push (Util.Rng.int rng 8);
          want_operand := false
        end
        else begin
          push 1;
          push (Util.Rng.int rng 1000);
          want_operand := false
        end
      else if Util.Rng.chance rng 1 4 && !depth > 0 then begin
        push 6;
        decr depth
      end
      else begin
        push (Util.Rng.choose rng [| 2; 3; 4 |]);
        want_operand := true
      end
    done;
    if !want_operand then begin
      push 1;
      push 1
    end;
    while !depth > 0 do
      push 6;
      decr depth
    done;
    push 0
  done;
  List.rev !buf
