(** SPEC CPU 2017 integer-suite analogs — the 8 C/C++ benchmarks the
    paper uses (520.omnetpp excluded there as well). Each is a
    self-driving compute kernel in the domain of its namesake, sized so a
    full run takes on the order of 10^5 VM instructions. They are used
    for performance measurements, not for fuzzing, so they synthesize
    their own workloads from a seeded LCG. *)

open Suite_types

let bench name source =
  { p_name = name; p_source = source; p_harnesses = [ { h_name = "ref"; h_entry = "main"; h_seeds = [ [] ] } ] }

(* Wildcard pattern matching over generated text, perlbench's regex
   engine in miniature. *)
let perlbench =
  bench "500.perlbench"
    {|
int text[256];
int pattern[16];
int rng_state;

int rng_next() {
  rng_state = (rng_state * 1103515245 + 12345) & 2147483647;
  return rng_state >> 16;
}

int gen_text(int n) {
  int i = 0;
  while (i < n) {
    text[i] = rng_next() % 6;
    i = i + 1;
  }
  return n;
}

int gen_pattern(int n) {
  int i = 0;
  while (i < n) {
    int r = rng_next() % 8;
    if (r >= 6) {
      pattern[i] = -1;
    } else {
      pattern[i] = r;
    }
    i = i + 1;
  }
  return n;
}

int match_at(int pos, int plen) {
  int k = 0;
  while (k < plen) {
    int pc = pattern[k];
    if (pc != -1 && text[pos + k] != pc) {
      return 0;
    }
    k = k + 1;
  }
  return 1;
}

int count_matches(int tlen, int plen) {
  int hits = 0;
  int pos = 0;
  while (pos + plen <= tlen) {
    hits = hits + match_at(pos, plen);
    pos = pos + 1;
  }
  return hits;
}

int main() {
  rng_state = 12345;
  int total = 0;
  int round = 0;
  while (round < 40) {
    int tlen = 128 + (rng_next() % 128);
    int plen = 3 + (rng_next() % 5);
    gen_text(tlen);
    gen_pattern(plen);
    total = total + count_matches(tlen, plen);
    round = round + 1;
  }
  output(total);
  return total;
}
|}

(* Tokenize, parse and constant-fold arithmetic expressions, then
   "emit" stack code — a pocket 502.gcc. *)
let gcc_bench =
  bench "502.gcc"
    {|
int toks[64];
int ntoks;
int pos;
int emitted;
int rng_state;

int rng_next() {
  rng_state = (rng_state * 1103515245 + 12345) & 2147483647;
  return rng_state >> 16;
}

int gen_tokens() {
  ntoks = 0;
  int depth = 0;
  int want_operand = 1;
  while (ntoks < 60) {
    if (want_operand) {
      int r = rng_next() % 10;
      if (r < 2 && depth < 4 && ntoks < 50) {
        toks[ntoks] = -3;
        depth = depth + 1;
      } else {
        toks[ntoks] = rng_next() % 100;
        want_operand = 0;
      }
    } else {
      int r2 = rng_next() % 10;
      if (r2 < 3 && depth > 0) {
        toks[ntoks] = -4;
        depth = depth - 1;
      } else {
        if (r2 < 7) {
          toks[ntoks] = -1;
          want_operand = 1;
        } else {
          toks[ntoks] = -2;
          want_operand = 1;
        }
      }
    }
    ntoks = ntoks + 1;
  }
  while (depth > 0 && ntoks < 64) {
    if (want_operand) {
      toks[ntoks] = 1;
      want_operand = 0;
    } else {
      toks[ntoks] = -4;
      depth = depth - 1;
    }
    ntoks = ntoks + 1;
  }
  return ntoks;
}

int parse_primary() {
  if (pos >= ntoks) {
    return 0;
  }
  int t = toks[pos];
  pos = pos + 1;
  if (t == -3) {
    int inner = parse_expr();
    if (pos < ntoks && toks[pos] == -4) {
      pos = pos + 1;
    }
    return inner;
  }
  if (t >= 0) {
    emitted = emitted + 1;
    return t;
  }
  return 0;
}

int parse_expr() {
  int lhs = parse_primary();
  int more = 1;
  while (more && pos < ntoks) {
    int t = toks[pos];
    if (t == -1) {
      pos = pos + 1;
      int rhs = parse_primary();
      lhs = lhs + rhs;
      emitted = emitted + 1;
    } else {
      if (t == -2) {
        pos = pos + 1;
        int rhs2 = parse_primary();
        lhs = lhs * rhs2;
        lhs = lhs % 100003;
        emitted = emitted + 1;
      } else {
        more = 0;
      }
    }
  }
  return lhs;
}

int main() {
  rng_state = 99;
  emitted = 0;
  int checksum = 0;
  int unit = 0;
  while (unit < 60) {
    gen_tokens();
    pos = 0;
    int value = parse_expr();
    checksum = (checksum + value) % 1000003;
    unit = unit + 1;
  }
  output(checksum);
  output(emitted);
  return checksum;
}
|}

(* Bellman-Ford relaxation sweeps over a generated network, the memory
   access pattern of 505.mcf. *)
let mcf =
  bench "505.mcf"
    {|
int arc_from[160];
int arc_to[160];
int arc_cost[160];
int dist[48];
int narcs;
int nnodes;
int rng_state;

int rng_next() {
  rng_state = (rng_state * 1103515245 + 12345) & 2147483647;
  return rng_state >> 16;
}

int build_network() {
  nnodes = 48;
  narcs = 0;
  int i = 0;
  while (i < 47) {
    arc_from[narcs] = i;
    arc_to[narcs] = i + 1;
    arc_cost[narcs] = 1 + (rng_next() % 10);
    narcs = narcs + 1;
    i = i + 1;
  }
  while (narcs < 160) {
    arc_from[narcs] = rng_next() % 48;
    arc_to[narcs] = rng_next() % 48;
    arc_cost[narcs] = 1 + (rng_next() % 30);
    narcs = narcs + 1;
  }
  return narcs;
}

int relax_all() {
  int improved = 0;
  int a = 0;
  while (a < narcs) {
    int u = arc_from[a];
    int v = arc_to[a];
    int du = dist[u];
    if (du < 1000000) {
      int cand = du + arc_cost[a];
      if (cand < dist[v]) {
        dist[v] = cand;
        improved = improved + 1;
      }
    }
    a = a + 1;
  }
  return improved;
}

int shortest_paths(int source) {
  int i = 0;
  while (i < nnodes) {
    dist[i] = 1000000;
    i = i + 1;
  }
  dist[source] = 0;
  int rounds = 0;
  int improved = 1;
  while (improved > 0 && rounds < nnodes) {
    improved = relax_all();
    rounds = rounds + 1;
  }
  return rounds;
}

int main() {
  rng_state = 777;
  build_network();
  int total = 0;
  int s = 0;
  while (s < 12) {
    shortest_paths(s);
    total = total + dist[47];
    s = s + 1;
  }
  output(total);
  return total;
}
|}

(* Array-encoded binary tree construction and transformation passes,
   after 523.xalancbmk's DOM churning. *)
let xalancbmk =
  bench "523.xalancbmk"
    {|
int node_left[128];
int node_right[128];
int node_value[128];
int node_kind[128];
int nnodes;
int rng_state;

int rng_next() {
  rng_state = (rng_state * 1103515245 + 12345) & 2147483647;
  return rng_state >> 16;
}

int new_node(int kind, int value) {
  if (nnodes >= 128) {
    return 0;
  }
  int id = nnodes;
  nnodes = nnodes + 1;
  node_kind[id] = kind;
  node_value[id] = value;
  node_left[id] = -1;
  node_right[id] = -1;
  return id;
}

int build_tree(int depth) {
  int kind = rng_next() % 3;
  int id = new_node(kind, rng_next() % 1000);
  if (depth > 0 && nnodes < 120) {
    node_left[id] = build_tree(depth - 1);
    if (rng_next() % 3 != 0) {
      node_right[id] = build_tree(depth - 1);
    }
  }
  return id;
}

int transform(int id) {
  if (id < 0) {
    return 0;
  }
  int count = 1;
  if (node_kind[id] == 0) {
    node_value[id] = node_value[id] * 2 + 1;
  }
  if (node_kind[id] == 1) {
    int tmp = node_left[id];
    node_left[id] = node_right[id];
    node_right[id] = tmp;
  }
  count = count + transform(node_left[id]);
  count = count + transform(node_right[id]);
  return count;
}

int checksum(int id) {
  if (id < 0) {
    return 0;
  }
  int h = node_value[id] * 31 + node_kind[id];
  h = h + checksum(node_left[id]) * 7;
  h = h + checksum(node_right[id]) * 13;
  return h % 1000003;
}

int main() {
  rng_state = 4242;
  int total = 0;
  int doc = 0;
  while (doc < 25) {
    nnodes = 0;
    int root = build_tree(6);
    int pass = 0;
    while (pass < 4) {
      transform(root);
      pass = pass + 1;
    }
    total = (total + checksum(root)) % 1000003;
    doc = doc + 1;
  }
  output(total);
  return total;
}
|}

(* Sum-of-absolute-differences motion search over generated frames —
   x264's hottest loop, and the suite's vectorization showcase. *)
let x264 =
  bench "525.x264"
    {|
int ref_frame[256];
int cur_frame[256];
int rng_state;

int rng_next() {
  rng_state = (rng_state * 1103515245 + 12345) & 2147483647;
  return rng_state >> 16;
}

int gen_frames() {
  int i = 0;
  while (i < 256) {
    ref_frame[i] = rng_next() % 256;
    cur_frame[i] = (ref_frame[i] + (rng_next() % 16)) % 256;
    i = i + 1;
  }
  return 0;
}

int sad_block(int roff, int coff) {
  int sum = 0;
  int row = 0;
  while (row < 4) {
    int base_r = roff + row * 16;
    int base_c = coff + row * 16;
    int d0 = ref_frame[base_r] - cur_frame[base_c];
    int d1 = ref_frame[base_r + 1] - cur_frame[base_c + 1];
    int d2 = ref_frame[base_r + 2] - cur_frame[base_c + 2];
    int d3 = ref_frame[base_r + 3] - cur_frame[base_c + 3];
    int a0 = d0 * d0;
    int a1 = d1 * d1;
    int a2 = d2 * d2;
    int a3 = d3 * d3;
    sum = sum + a0 + a1 + a2 + a3;
    row = row + 1;
  }
  return sum;
}

int search_block(int coff) {
  int best = 1000000000;
  int best_off = 0;
  int dy = 0;
  while (dy < 4) {
    int dx = 0;
    while (dx < 4) {
      int roff = (coff + dy * 16 + dx) & 191;
      int cost = sad_block(roff, coff & 191);
      if (cost < best) {
        best = cost;
        best_off = roff;
      }
      dx = dx + 1;
    }
    dy = dy + 1;
  }
  return best + best_off;
}

int main() {
  rng_state = 31337;
  int total = 0;
  int frame = 0;
  while (frame < 6) {
    gen_frames();
    int block = 0;
    while (block < 12) {
      total = total + search_block(block * 16);
      block = block + 1;
    }
    frame = frame + 1;
  }
  output(total);
  return total;
}
|}

(* Alpha-beta search with a toy evaluation, 531.deepsjeng's shape. *)
let deepsjeng =
  bench "531.deepsjeng"
    {|
int board[16];
int nodes;
int rng_state;

int rng_next() {
  rng_state = (rng_state * 1103515245 + 12345) & 2147483647;
  return rng_state >> 16;
}

int evaluate() {
  int score = 0;
  int i = 0;
  while (i < 16) {
    score = score + board[i] * (i + 1);
    i = i + 1;
  }
  return score % 1000;
}

int make_move(int m, int side) {
  int sq = m & 15;
  int old = board[sq];
  board[sq] = board[sq] + side;
  return old;
}

int unmake_move(int m, int old) {
  board[m & 15] = old;
  return 0;
}

int alphabeta(int depth, int alpha, int beta, int side) {
  nodes = nodes + 1;
  if (depth == 0) {
    return side * evaluate();
  }
  int best = -100000;
  int m = 0;
  while (m < 6) {
    int move = (rng_next() + m) & 15;
    int old = make_move(move, side);
    int score = -alphabeta(depth - 1, -beta, -alpha, -side);
    unmake_move(move, old);
    if (score > best) {
      best = score;
    }
    if (best > alpha) {
      alpha = best;
    }
    if (alpha >= beta) {
      m = 6;
    } else {
      m = m + 1;
    }
  }
  return best;
}

int main() {
  rng_state = 2024;
  nodes = 0;
  int i = 0;
  while (i < 16) {
    board[i] = rng_next() % 9;
    i = i + 1;
  }
  int total = 0;
  int game = 0;
  while (game < 6) {
    total = total + alphabeta(5, -100000, 100000, 1);
    game = game + 1;
  }
  output(total);
  output(nodes);
  return total;
}
|}

(* Monte-Carlo playouts on a tiny board, 541.leela's rollout loop. *)
let leela =
  bench "541.leela"
    {|
int board[81];
int wins;
int rng_state;

int rng_next() {
  rng_state = (rng_state * 1103515245 + 12345) & 2147483647;
  return rng_state >> 16;
}

int playout() {
  int i = 0;
  while (i < 81) {
    board[i] = 0;
    i = i + 1;
  }
  int moves = 0;
  int score = 0;
  int side = 1;
  while (moves < 60) {
    int at = rng_next() % 81;
    if (board[at] == 0) {
      board[at] = side;
      int row = at / 9;
      int col = at % 9;
      int neighbors = 0;
      if (col > 0 && board[at - 1] == side) {
        neighbors = neighbors + 1;
      }
      if (col < 8 && board[at + 1] == side) {
        neighbors = neighbors + 1;
      }
      if (row > 0 && board[at - 9] == side) {
        neighbors = neighbors + 1;
      }
      if (row < 8 && board[at + 9] == side) {
        neighbors = neighbors + 1;
      }
      score = score + side * (1 + neighbors);
      side = -side;
    }
    moves = moves + 1;
  }
  return score;
}

int main() {
  rng_state = 555;
  wins = 0;
  int total = 0;
  int p = 0;
  while (p < 70) {
    int s = playout();
    if (s > 0) {
      wins = wins + 1;
    }
    total = total + s;
    p = p + 1;
  }
  output(wins);
  output(total);
  return wins;
}
|}

(* Match finding plus an arithmetic-coder-ish accumulator, 557.xz. *)
let xz =
  bench "557.xz"
    {|
int data[300];
int hash_head[64];
int rng_state;
int range_low;
int range_size;

int rng_next() {
  rng_state = (rng_state * 1103515245 + 12345) & 2147483647;
  return rng_state >> 16;
}

int gen_data() {
  int i = 0;
  while (i < 300) {
    if (i > 20 && rng_next() % 3 == 0) {
      data[i] = data[i - 17];
    } else {
      data[i] = rng_next() % 32;
    }
    i = i + 1;
  }
  return 300;
}

int hash3(int pos) {
  return (data[pos] * 33 + data[pos + 1] * 7 + data[pos + 2]) & 63;
}

int match_length(int a, int b, int limit) {
  int len = 0;
  while (len < limit && data[a + len] == data[b + len]) {
    len = len + 1;
  }
  return len;
}

int encode_bit(int bit, int prob) {
  int bound = (range_size >> 8) * prob;
  if (bit) {
    range_low = range_low + bound;
    range_size = range_size - bound;
  } else {
    range_size = bound;
  }
  if (range_size < 65536) {
    range_size = range_size << 8;
    range_low = (range_low << 8) & 16777215;
  }
  return range_low;
}

int main() {
  rng_state = 808;
  gen_data();
  range_low = 0;
  range_size = 16777215;
  int i = 0;
  while (i < 64) {
    hash_head[i] = -1;
    i = i + 1;
  }
  int pos = 0;
  int matched = 0;
  int literals = 0;
  while (pos < 290) {
    int h = hash3(pos);
    int cand = hash_head[h];
    int len = 0;
    if (cand >= 0 && cand < pos) {
      len = match_length(cand, pos, 8);
    }
    if (len >= 3) {
      matched = matched + len;
      encode_bit(1, 128 + len);
      pos = pos + len;
    } else {
      literals = literals + 1;
      encode_bit(0, 100);
      pos = pos + 1;
    }
    hash_head[h] = pos - 1;
  }
  output(matched);
  output(literals);
  output(range_low);
  return matched;
}
|}

(* Discrete-event simulation: a ring of modules exchanging timestamped
   messages through a binary-heap future-event set, after 520.omnetpp's
   network simulator kernel. *)
let omnetpp =
  bench "520.omnetpp"
    {|
int ev_time[128];
int ev_module[128];
int ev_kind[128];
int heap_size;
int module_state[16];
int delivered;
int sim_rng;

int sim_next() {
  sim_rng = (sim_rng * 1103515245 + 12345) & 2147483647;
  return sim_rng >> 16;
}

int heap_push(int time, int module, int kind) {
  if (heap_size >= 128) { return 0; }
  int i = heap_size;
  ev_time[i] = time;
  ev_module[i] = module;
  ev_kind[i] = kind;
  heap_size = heap_size + 1;
  while (i > 0) {
    int parent = (i - 1) / 2;
    if (ev_time[parent] <= ev_time[i]) { break; }
    int t = ev_time[parent]; ev_time[parent] = ev_time[i]; ev_time[i] = t;
    t = ev_module[parent]; ev_module[parent] = ev_module[i]; ev_module[i] = t;
    t = ev_kind[parent]; ev_kind[parent] = ev_kind[i]; ev_kind[i] = t;
    i = parent;
  }
  return 1;
}

int heap_pop() {
  int top = ev_time[0] * 1024 + ev_module[0] * 8 + ev_kind[0];
  heap_size = heap_size - 1;
  ev_time[0] = ev_time[heap_size];
  ev_module[0] = ev_module[heap_size];
  ev_kind[0] = ev_kind[heap_size];
  int i = 0;
  while (1 < 2) {
    int l = 2 * i + 1;
    int r = 2 * i + 2;
    int smallest = i;
    if (l < heap_size && ev_time[l] < ev_time[smallest]) { smallest = l; }
    if (r < heap_size && ev_time[r] < ev_time[smallest]) { smallest = r; }
    if (smallest == i) { break; }
    int t = ev_time[smallest]; ev_time[smallest] = ev_time[i]; ev_time[i] = t;
    t = ev_module[smallest]; ev_module[smallest] = ev_module[i]; ev_module[i] = t;
    t = ev_kind[smallest]; ev_kind[smallest] = ev_kind[i]; ev_kind[i] = t;
    i = smallest;
  }
  return top;
}

int handle_message(int module, int time, int kind) {
  module_state[module] = module_state[module] + kind + 1;
  delivered = delivered + 1;
  if (delivered < 600) {
    int target = (module + 1 + (kind % 3)) % 16;
    int delay = 1 + (sim_next() % 9);
    heap_push(time + delay, target, (module_state[module] + kind) % 5);
  }
  return module_state[module];
}

int run_simulation(int until) {
  int now = 0;
  while (heap_size > 0 && now <= until) {
    int packed = heap_pop();
    now = packed / 1024;
    int module = (packed / 8) % 128;
    int kind = packed % 8;
    handle_message(module % 16, now, kind);
  }
  return now;
}

int main() {
  sim_rng = 2026;
  delivered = 0;
  heap_size = 0;
  int m = 0;
  while (m < 16) {
    module_state[m] = 0;
    heap_push(1 + (sim_next() % 5), m, m % 5);
    m = m + 1;
  }
  int end_time = run_simulation(4000);
  int checksum = end_time * 31 + delivered;
  int i = 0;
  while (i < 16) {
    checksum = checksum + module_state[i] * (i + 1);
    i = i + 1;
  }
  output(checksum);
  return checksum;
}
|}

(* Recursive exact-cover search with pruning over a 6x6 latin-square
   board, after 548.exchange2's sudoku-style solver. *)
let exchange2 =
  bench "548.exchange2"
    {|
int board[36];
int solutions;
int steps;

int can_place(int cell, int digit) {
  int row = cell / 6;
  int col = cell % 6;
  int i = 0;
  while (i < 6) {
    if (board[row * 6 + i] == digit) { return 0; }
    if (board[i * 6 + col] == digit) { return 0; }
    i = i + 1;
  }
  return 1;
}

int solve(int cell) {
  steps = steps + 1;
  if (steps > 20000) { return solutions; }
  while (cell < 36 && board[cell] != 0) {
    cell = cell + 1;
  }
  if (cell >= 36) {
    solutions = solutions + 1;
    return solutions;
  }
  int digit = 1;
  while (digit <= 6) {
    if (can_place(cell, digit) == 1) {
      board[cell] = digit;
      solve(cell + 1);
      board[cell] = 0;
      if (solutions >= 40) { return solutions; }
    }
    digit = digit + 1;
  }
  return solutions;
}

int main() {
  int i = 0;
  while (i < 36) {
    board[i] = 0;
    i = i + 1;
  }
  board[0] = 1; board[7] = 2; board[14] = 3;
  board[21] = 4; board[28] = 5; board[35] = 6;
  solutions = 0;
  steps = 0;
  solve(0);
  output(solutions * 100000 + steps);
  return solutions;
}
|}

let all =
  [
    perlbench; gcc_bench; mcf; xalancbmk; omnetpp; x264; deepsjeng; leela;
    exchange2; xz;
  ]

let find name =
  match List.find_opt (fun p -> p.p_name = name) all with
  | Some p -> p
  | None -> invalid_arg ("Spec.find: unknown benchmark " ^ name)
