(** Csmith-like synthetic program generator (paper Section II).

    Mirrors the properties the paper attributes to its 5000 reference
    programs: closed (no input, so a single run covers everything),
    expression-heavy, and full of artificial computation that optimizers
    delete wholesale — which is exactly why synthetic line coverage
    collapses at O1+ while real programs keep most of theirs. Roughly
    half of the generated statements feed a value that is never
    observable. Deterministic under the seed. *)

type gen = { rng : Util.Rng.t; buf : Buffer.t; mutable line : int }

let emit g s =
  Buffer.add_string g.buf s;
  Buffer.add_char g.buf '\n';
  g.line <- g.line + 1

let pad depth = String.make (2 * depth) ' '

(* Random expression over the variables in scope. *)
let rec expr g vars depth =
  if depth <= 0 || Util.Rng.chance g.rng 2 5 then
    if vars <> [] && Util.Rng.chance g.rng 3 5 then
      Util.Rng.choose_list g.rng vars
    else string_of_int (Util.Rng.int_in g.rng 0 99)
  else
    let op =
      Util.Rng.choose g.rng
        [| "+"; "-"; "*"; "&"; "|"; "^"; "%"; ">>"; "=="; "<"; ">" |]
    in
    let lhs = expr g vars (depth - 1) in
    let rhs =
      (* Keep % and >> well-behaved. *)
      match op with
      | "%" -> string_of_int (Util.Rng.int_in g.rng 2 13)
      | ">>" -> string_of_int (Util.Rng.int_in g.rng 1 5)
      | _ -> expr g vars (depth - 1)
    in
    Printf.sprintf "(%s %s %s)" lhs op rhs

let fresh_var prefix counter =
  incr counter;
  Printf.sprintf "%s%d" prefix !counter

(* A statement block; returns the variables it declared at this level. *)
let rec statements g ~vars ~counter ~depth ~budget ~loop_depth =
  let local_vars = ref vars in
  let n = Util.Rng.int_in g.rng 2 (max 2 budget) in
  for _ = 1 to n do
    match Util.Rng.int g.rng 10 with
    | 0 | 1 | 2 | 3 ->
        (* Fresh temporary (often dead). *)
        let v = fresh_var "t" counter in
        emit g
          (Printf.sprintf "%sint %s = %s;" (pad depth) v
             (expr g !local_vars 2));
        local_vars := v :: !local_vars
    | 4 | 5 ->
        (* Mutate an existing variable (never a loop counter, so loops
           always terminate). *)
        let mutable_vars =
          List.filter (fun v -> String.length v = 0 || v.[0] <> 'i') !local_vars
        in
        if mutable_vars <> [] then
          let v = Util.Rng.choose_list g.rng mutable_vars in
          emit g
            (Printf.sprintf "%s%s = %s;" (pad depth) v (expr g !local_vars 2))
    | 6 | 7 ->
        if depth < 4 then begin
          emit g
            (Printf.sprintf "%sif (%s) {" (pad depth) (expr g !local_vars 1));
          ignore
            (statements g ~vars:!local_vars ~counter ~depth:(depth + 1)
               ~budget:(budget / 2) ~loop_depth);
          if Util.Rng.bool g.rng then begin
            emit g (Printf.sprintf "%s} else {" (pad depth));
            ignore
              (statements g ~vars:!local_vars ~counter ~depth:(depth + 1)
                 ~budget:(budget / 2) ~loop_depth)
          end;
          emit g (Printf.sprintf "%s}" (pad depth))
        end
    | 8 ->
        if loop_depth < 2 && depth < 4 then begin
          let i = fresh_var "i" counter in
          let bound = Util.Rng.int_in g.rng 2 7 in
          emit g
            (Printf.sprintf "%sfor (int %s = 0; %s < %d; %s = %s + 1) {"
               (pad depth) i i bound i i);
          ignore
            (statements g
               ~vars:(i :: !local_vars)
               ~counter ~depth:(depth + 1) ~budget:(budget / 2)
               ~loop_depth:(loop_depth + 1));
          emit g (Printf.sprintf "%s}" (pad depth))
        end
    | _ ->
        (* Accumulation into a sink sometimes keeps code alive. *)
        if !local_vars <> [] && Util.Rng.chance g.rng 1 2 then
          emit g
            (Printf.sprintf "%ssink = sink ^ %s;" (pad depth)
               (expr g !local_vars 1))
  done;
  !local_vars

let helper g ~name ~counter =
  let arity = Util.Rng.int_in g.rng 1 3 in
  let params = List.init arity (fun i -> Printf.sprintf "p%d" i) in
  emit g
    (Printf.sprintf "int %s(%s) {" name
       (String.concat ", " (List.map (fun p -> "int " ^ p) params)));
  let vars =
    statements g ~vars:params ~counter ~depth:1 ~budget:6 ~loop_depth:0
  in
  emit g (Printf.sprintf "  return %s;" (expr g vars 2));
  emit g "}";
  emit g "";
  arity

(** [generate ~seed] produces one synthetic MiniC source. *)
let generate ~seed =
  let g = { rng = Util.Rng.create seed; buf = Buffer.create 2048; line = 1 } in
  emit g "int sink;";
  emit g "";
  let counter = ref 0 in
  let n_helpers = Util.Rng.int_in g.rng 2 4 in
  let helper_names = List.init n_helpers (fun i -> Printf.sprintf "f%d" i) in
  let helpers =
    List.map (fun name -> (name, helper g ~name ~counter)) helper_names
  in
  emit g "int main() {";
  emit g "  sink = 0;";
  let vars = ref [] in
  let n_top = Util.Rng.int_in g.rng 3 6 in
  for _ = 1 to n_top do
    (match Util.Rng.int g.rng 3 with
    | 0 ->
        (* Call a helper, maybe into a dead temporary. *)
        let f, arity = Util.Rng.choose_list g.rng helpers in
        let args = List.init arity (fun _ -> expr g !vars 1) in
        let v = fresh_var "r" counter in
        emit g
          (Printf.sprintf "  int %s = %s(%s);" v f (String.concat ", " args));
        vars := v :: !vars
    | _ ->
        vars :=
          statements g ~vars:!vars ~counter ~depth:1 ~budget:8 ~loop_depth:0);
  done;
  (match !vars with
  | v :: _ -> emit g (Printf.sprintf "  output(sink ^ %s);" v)
  | [] -> emit g "  output(sink);");
  emit g "  return 0;";
  emit g "}";
  Buffer.contents g.buf

(** A synthetic program as a suite entry (closed: the only input is the
    empty vector, like Csmith programs). *)
let program ~seed : Suite_types.sprogram =
  {
    Suite_types.p_name = Printf.sprintf "synth-%d" seed;
    p_source = generate ~seed;
    p_harnesses =
      [ { Suite_types.h_name = "main"; h_entry = "main"; h_seeds = [ [] ] } ];
  }
