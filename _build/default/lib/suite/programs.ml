(** The 13-program debug-information test suite (paper Section IV).

    Every program is a MiniC application themed after its OSS-Fuzz
    namesake, with the harnesses and hand-written seed inputs a fuzzing
    setup would ship. *)

open Suite_types

let all : sprogram list = Programs_a.all @ Programs_b.all @ Programs_c.all

let find name =
  match List.find_opt (fun p -> p.p_name = name) all with
  | Some p -> p
  | None -> invalid_arg ("Programs.find: unknown program " ^ name)

let names = List.map (fun p -> p.p_name) all
