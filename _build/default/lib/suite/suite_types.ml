(** Test-suite program descriptions.

    A program is MiniC source text plus one or more harnesses — entry
    functions that read the test input with [input()]/[eof()], mirroring
    OSS-Fuzz fuzz targets. [h_seeds] are the hand-written seed inputs a
    project ships with its fuzzers. *)

type harness = {
  h_name : string;
  h_entry : string;  (** entry function; takes no parameters *)
  h_seeds : int list list;
}

type sprogram = {
  p_name : string;
  p_source : string;
  p_harnesses : harness list;
}

(** Parse and check a suite program, failing loudly if its source is
    malformed (suite sources are part of the repository and must always
    parse). *)
let ast (p : sprogram) =
  try Minic.Typecheck.parse_and_check p.p_source with
  | Minic.Parser.Error (msg, line) ->
      failwith (Printf.sprintf "%s: parse error line %d: %s" p.p_name line msg)
  | Minic.Lexer.Error (msg, line) ->
      failwith (Printf.sprintf "%s: lex error line %d: %s" p.p_name line msg)
  | Minic.Typecheck.Error (msg, line) ->
      failwith (Printf.sprintf "%s: check error line %d: %s" p.p_name line msg)

let roots (p : sprogram) = List.map (fun h -> h.h_entry) p.p_harnesses
