(** Test-suite programs, batch A: bzip2, libdwarf, libexif, liblouis.

    Each is a small but genuine program in its namesake's domain —
    run-length + move-to-front coding, LEB128/DIE parsing, tag parsing,
    translation-table lookup — written in MiniC with the control-flow and
    variable-usage texture of real C (helper functions, state machines,
    tables, bounded scan loops). *)

open Suite_types

(* Run-length encoding with a move-to-front stage, the flavor of bzip2's
   RLE+MTF front end. *)
let bzip2 =
  {
    p_name = "bzip2";
    p_harnesses =
      [
        {
          h_name = "compress";
          h_entry = "fuzz_compress";
          h_seeds =
            [
              [ 7; 7; 7; 7; 2; 3; 3; 9 ];
              [ 1; 1; 1; 1; 1; 1; 1; 1; 1; 1; 5 ];
              [ 250; 250; 4; 4; 4; 0 ];
            ];
        };
        {
          h_name = "crc";
          h_entry = "fuzz_crc";
          h_seeds = [ [ 10; 20; 30 ]; [ 255; 0; 255; 0 ] ];
        };
      ];
    p_source =
      {|
int mtf_table[16];

int mtf_init() {
  int i = 0;
  while (i < 16) {
    mtf_table[i] = i;
    i = i + 1;
  }
  return 0;
}

int mtf_encode(int sym) {
  int pos = 0;
  int i = 0;
  while (i < 16) {
    if (mtf_table[i] == sym) {
      pos = i;
    }
    i = i + 1;
  }
  int j = pos;
  while (j > 0) {
    mtf_table[j] = mtf_table[j - 1];
    j = j - 1;
  }
  mtf_table[0] = sym;
  return pos;
}

int rle_flush(int byte, int run) {
  if (run >= 4) {
    output(byte);
    output(byte);
    output(byte);
    output(byte);
    output(run - 4);
    return 5;
  }
  int k = 0;
  while (k < run) {
    output(byte);
    k = k + 1;
  }
  return run;
}

int fuzz_compress() {
  mtf_init();
  int prev = -1;
  int run = 0;
  int emitted = 0;
  int budget = 200;
  while (!eof() && budget > 0) {
    int raw = input();
    int byte = raw & 255;
    int coded = mtf_encode(byte & 15);
    if (coded == prev && run < 255) {
      run = run + 1;
    } else {
      emitted = emitted + rle_flush(prev, run);
      prev = coded;
      run = 1;
    }
    budget = budget - 1;
  }
  emitted = emitted + rle_flush(prev, run);
  output(emitted);
  return emitted;
}

int crc_update(int crc, int byte) {
  int c = crc ^ (byte & 255);
  int k = 0;
  while (k < 8) {
    if (c & 1) {
      c = (c >> 1) ^ 21111;
    } else {
      c = c >> 1;
    }
    k = k + 1;
  }
  return c;
}

int fuzz_crc() {
  int crc = 65535;
  int count = 0;
  while (!eof() && count < 300) {
    crc = crc_update(crc, input());
    count = count + 1;
  }
  output(crc);
  output(count);
  return crc;
}
|};
  }

(* LEB128 decoding and a miniature DIE (debugging information entry)
   walker, libdwarf's bread and butter. *)
let libdwarf =
  {
    p_name = "libdwarf";
    p_harnesses =
      [
        {
          h_name = "leb";
          h_entry = "fuzz_leb";
          h_seeds = [ [ 200; 15 ]; [ 129; 129; 1 ]; [ 127 ] ];
        };
        {
          h_name = "die";
          h_entry = "fuzz_die";
          h_seeds =
            [
              [ 1; 3; 2; 5; 0 ];
              [ 2; 10; 1; 4; 2; 6; 0 ];
              [ 3; 1; 2; 3; 4; 5; 6; 0 ];
            ];
        };
      ];
    p_source =
      {|
int die_depth;
int die_count;

int read_uleb() {
  int result = 0;
  int shift = 0;
  int more = 1;
  while (more && shift < 56) {
    int byte = input() & 255;
    result = result | ((byte & 127) << shift);
    shift = shift + 7;
    if ((byte & 128) == 0) {
      more = 0;
    }
  }
  return result;
}

int read_sleb() {
  int result = 0;
  int shift = 0;
  int byte = 0;
  int more = 1;
  while (more && shift < 56) {
    byte = input() & 255;
    result = result | ((byte & 127) << shift);
    shift = shift + 7;
    if ((byte & 128) == 0) {
      more = 0;
    }
  }
  if (shift < 56 && (byte & 64)) {
    result = result | ((-1) << shift);
  }
  return result;
}

int fuzz_leb() {
  int sum = 0;
  int n = 0;
  while (!eof() && n < 80) {
    int u = read_uleb();
    int s = read_sleb();
    sum = sum + u - s;
    n = n + 1;
  }
  output(sum);
  return sum;
}

int attr_size(int form) {
  if (form == 1) { return 1; }
  if (form == 2) { return 2; }
  if (form == 3) { return 4; }
  if (form == 4) { return 8; }
  return 0;
}

int skip_attrs(int count) {
  int skipped = 0;
  int a = 0;
  while (a < count && !eof()) {
    int form = input() & 7;
    int size = attr_size(form);
    int b = 0;
    while (b < size && !eof()) {
      input();
      skipped = skipped + 1;
      b = b + 1;
    }
    a = a + 1;
  }
  return skipped;
}

int walk_die() {
  int tag = input();
  if (tag == 0) {
    die_depth = die_depth - 1;
    return 0;
  }
  die_count = die_count + 1;
  int nattrs = input() & 3;
  int skipped = skip_attrs(nattrs);
  if (tag & 1) {
    die_depth = die_depth + 1;
  }
  return skipped;
}

int parse_indirect_form(int depth, int form) {
  if (depth > 4) {
    return -1;
  }
  if (form == 22) {
    return parse_indirect_form(depth + 1, form - 1);
  }
  int width = attr_size(form & 7);
  return width * 2 + depth;
}

int format_producer_string(int vendor) {
  int code = 0;
  if (vendor == 1) {
    code = 71;
  }
  if (vendor == 2) {
    code = 67;
  }
  if (vendor == 3) {
    code = 77;
  }
  if (code == 0) {
    code = 63;
  }
  return code * 1000 + vendor;
}

int fuzz_die() {
  die_depth = 0;
  die_count = 0;
  int total = 0;
  int steps = 0;
  while (!eof() && die_depth >= 0 && steps < 120) {
    total = total + walk_die();
    steps = steps + 1;
  }
  output(die_count);
  output(total);
  return die_count;
}
|};
  }

(* EXIF-style tag directory parsing with bounds validation. *)
let libexif =
  {
    p_name = "libexif";
    p_harnesses =
      [
        {
          h_name = "ifd";
          h_entry = "fuzz_ifd";
          h_seeds =
            [
              [ 2; 1; 3; 100; 2; 4; 7 ];
              [ 1; 5; 2; 300 ];
              [ 4; 9; 1; 1; 10; 3; 0; 11; 2; 50; 12; 4; 60 ];
            ];
        };
      ];
    p_source =
      {|
int tag_values[32];
int tag_ids[32];
int tag_count;

int type_width(int t) {
  if (t == 1) { return 1; }
  if (t == 2) { return 1; }
  if (t == 3) { return 2; }
  if (t == 4) { return 4; }
  if (t == 5) { return 8; }
  return 0;
}

int store_tag(int id, int value) {
  if (tag_count >= 32) {
    return 0;
  }
  tag_ids[tag_count] = id;
  tag_values[tag_count] = value;
  tag_count = tag_count + 1;
  return 1;
}

int parse_entry() {
  int id = input() & 1023;
  int etype = input() & 7;
  int width = type_width(etype);
  if (width == 0) {
    return 0;
  }
  int value = input();
  if (width > 4) {
    value = value & 65535;
  }
  return store_tag(id, value);
}

int find_tag(int id) {
  int i = 0;
  while (i < tag_count) {
    if (tag_ids[i] == id) {
      return tag_values[i];
    }
    i = i + 1;
  }
  return -1;
}

int fuzz_ifd() {
  tag_count = 0;
  int declared = input() & 31;
  int parsed = 0;
  int e = 0;
  while (e < declared && !eof()) {
    parsed = parsed + parse_entry();
    e = e + 1;
  }
  int orientation = find_tag(9);
  int width = find_tag(11);
  if (orientation > 0 && orientation <= 8) {
    output(orientation);
  } else {
    output(0);
  }
  output(parsed);
  output(width);
  return parsed;
}
|};
  }

(* Braille translation with a rule table and greedy longest-match, in
   liblouis's spirit. *)
let liblouis =
  {
    p_name = "liblouis";
    p_harnesses =
      [
        {
          h_name = "translate";
          h_entry = "fuzz_translate";
          h_seeds =
            [
              [ 3; 8; 3; 8; 1; 2 ];
              [ 5; 5; 5; 5; 5 ];
              [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ];
            ];
        };
      ];
    p_source =
      {|
int rule_in[8];
int rule_out[8];
int text[64];
int text_len;

int load_rules() {
  rule_in[0] = 3; rule_out[0] = 17;
  rule_in[1] = 8; rule_out[1] = 23;
  rule_in[2] = 5; rule_out[2] = 29;
  rule_in[3] = 1; rule_out[3] = 31;
  rule_in[4] = 2; rule_out[4] = 37;
  rule_in[5] = 9; rule_out[5] = 41;
  rule_in[6] = 4; rule_out[6] = 43;
  rule_in[7] = 6; rule_out[7] = 47;
  return 8;
}

int read_text() {
  text_len = 0;
  while (!eof() && text_len < 64) {
    text[text_len] = input() & 15;
    text_len = text_len + 1;
  }
  return text_len;
}

int match_rule(int sym) {
  int r = 0;
  while (r < 8) {
    if (rule_in[r] == sym) {
      return rule_out[r];
    }
    r = r + 1;
  }
  return sym + 64;
}

int contract_pair(int a, int b) {
  if (a == 3 && b == 8) {
    return 99;
  }
  if (a == 5 && b == 5) {
    return 98;
  }
  return -1;
}

int fuzz_translate() {
  load_rules();
  int n = read_text();
  int i = 0;
  int cells = 0;
  while (i < n) {
    int pair = -1;
    if (i + 1 < n) {
      pair = contract_pair(text[i], text[i + 1]);
    }
    if (pair >= 0) {
      output(pair);
      i = i + 2;
    } else {
      output(match_rule(text[i]));
      i = i + 1;
    }
    cells = cells + 1;
  }
  output(cells);
  return cells;
}
|};
  }

let all = [ bzip2; libdwarf; libexif; liblouis ]
