(** Debug-information quality metrics — the four methods of Section II.

    All methods produce the same triple:

    - {e availability of variables} — how much of the variable information
      a baseline debugging experience offers survives in the optimized
      binary;
    - {e line coverage} — the fraction of baseline-steppable lines still
      steppable;
    - their {e product}, the paper's headline score.

    Methods:
    - [dynamic] (Assaiante et al.): availability per stepped line as the
      ratio of variables visible in the optimized vs unoptimized session.
      The O0 baseline over-reports (frame variables are "visible" before
      first assignment — a DWARF artifact), so this underestimates.
    - [static] (Stinnett & Kell): compares debug-symbol coverage of each
      variable against its statically computed definition range, with all
      statement lines (dead code included) as the line baseline. Counts
      symbols that never materialize in a session, so it overestimates.
    - [static_dbg]: the static method with both baselines restricted to
      lines actually stepped at O0 (the refinement of Table I).
    - [hybrid] (this paper): the dynamic method with both traces cleaned
      against static definition ranges, removing the O0 artifact. *)

type score = { availability : float; line_coverage : float; product : float }

let make_score availability line_coverage =
  { availability; line_coverage; product = availability *. line_coverage }

type inputs = {
  defranges : Minic.Defranges.t;
  unopt_trace : Debugger.trace;
  opt_trace : Debugger.trace;
  unopt_bin : Emit.binary;
  opt_bin : Emit.binary;
}

(* ------------------------------------------------------------------ *)
(* Dynamic and hybrid                                                  *)

let statically_defined (defranges : Minic.Defranges.t) (v : Ir.var_id) line =
  Minic.Defranges.in_def_range defranges ~func:v.Ir.origin ~var:v.Ir.name ~line

(* Availability over the lines stepped in both sessions; a line whose
   baseline set is empty contributes nothing (no variables to lose). *)
let availability_of_traces ~clean ~(defranges : Minic.Defranges.t) unopt opt =
  let ratios = ref [] in
  Hashtbl.iter
    (fun line base_vars ->
      match Hashtbl.find_opt opt.Debugger.stepped line with
      | None -> ()
      | Some opt_vars ->
          let filter vars =
            if clean then
              Debugger.Var_set.filter
                (fun v -> statically_defined defranges v line)
                vars
            else vars
          in
          let base = filter base_vars in
          let present = filter opt_vars in
          let n_base = Debugger.Var_set.cardinal base in
          if n_base > 0 then begin
            let n_present =
              Debugger.Var_set.cardinal (Debugger.Var_set.inter present base)
            in
            ratios := (float_of_int n_present /. float_of_int n_base) :: !ratios
          end)
    unopt.Debugger.stepped;
  match !ratios with [] -> 1.0 | rs -> Util.Stats.mean rs

let line_coverage_of_traces unopt opt =
  let base = Debugger.stepped_lines unopt in
  if base = [] then 1.0
  else
    let covered =
      List.filter (fun l -> Hashtbl.mem opt.Debugger.stepped l) base
    in
    float_of_int (List.length covered) /. float_of_int (List.length base)

let dynamic (m : inputs) =
  make_score
    (availability_of_traces ~clean:false ~defranges:m.defranges m.unopt_trace
       m.opt_trace)
    (line_coverage_of_traces m.unopt_trace m.opt_trace)

let hybrid (m : inputs) =
  make_score
    (availability_of_traces ~clean:true ~defranges:m.defranges m.unopt_trace
       m.opt_trace)
    (line_coverage_of_traces m.unopt_trace m.opt_trace)

(* ------------------------------------------------------------------ *)
(* Static and static-dbg                                               *)

module Int_set = Minic.Defranges.Int_set

(* Lines of [v]'s static definition range that carry a statement. *)
let static_range defranges (r : Minic.Defranges.var_range) =
  match r.Minic.Defranges.def_start with
  | None -> Int_set.empty
  | Some d ->
      let stmts =
        Minic.Defranges.statement_lines defranges ~func:r.Minic.Defranges.func
      in
      Int_set.filter
        (fun l -> l >= d && l <= r.Minic.Defranges.scope_end)
        stmts

let static_with ~restrict (m : inputs) =
  let limit set =
    match restrict with
    | None -> set
    | Some stepped -> Int_set.filter (fun l -> Int_set.mem l stepped) set
  in
  (* Availability, Stinnett-Kell style: measured over binary addresses
     attributed (by the line table) to lines inside the variable's
     definition range. Code the optimizer deleted has no addresses and
     silently leaves the denominator, and unusable (entry-value) entries
     count as coverage — the two channels of static overestimation. *)
  let line_table = m.opt_bin.Emit.debug.Dwarfish.line_table in
  let ratios =
    List.filter_map
      (fun (r : Minic.Defranges.var_range) ->
        let v = { Ir.origin = r.Minic.Defranges.func; name = r.Minic.Defranges.var } in
        let want_lines = limit (static_range m.defranges r) in
        if Int_set.is_empty want_lines then None
        else begin
          let ranges = Dwarfish.var_ranges m.opt_bin.Emit.debug v in
          let total = ref 0 and covered = ref 0 in
          List.iter
            (fun (e : Dwarfish.line_entry) ->
              if Int_set.mem e.Dwarfish.line want_lines then begin
                incr total;
                if
                  List.exists
                    (fun (rg : Dwarfish.range) ->
                      e.Dwarfish.addr >= rg.Dwarfish.lo
                      && e.Dwarfish.addr < rg.Dwarfish.hi)
                    ranges
                then incr covered
              end)
            line_table;
          if !total = 0 then None
          else Some (float_of_int !covered /. float_of_int !total)
        end)
      m.defranges.Minic.Defranges.vars
  in
  let availability = match ratios with [] -> 1.0 | rs -> Util.Stats.mean rs in
  (* Line coverage: steppable lines of the optimized binary over all
     statement lines (or the restricted set). *)
  let all_stmt_lines =
    Hashtbl.fold
      (fun _ lines acc -> Int_set.union lines acc)
      m.defranges.Minic.Defranges.stmt_lines Int_set.empty
  in
  let baseline = limit all_stmt_lines in
  let steppable = Int_set.of_list m.opt_trace.Debugger.steppable in
  let line_coverage =
    if Int_set.is_empty baseline then 1.0
    else
      float_of_int (Int_set.cardinal (Int_set.inter steppable baseline))
      /. float_of_int (Int_set.cardinal baseline)
  in
  make_score availability line_coverage

let static (m : inputs) = static_with ~restrict:None m

let static_dbg (m : inputs) =
  let stepped = Int_set.of_list (Debugger.stepped_lines m.unopt_trace) in
  static_with ~restrict:(Some stepped) m

(* ------------------------------------------------------------------ *)

type all_methods = {
  m_static : score;
  m_static_dbg : score;
  m_dynamic : score;
  m_hybrid : score;
}

let all (m : inputs) =
  {
    m_static = static m;
    m_static_dbg = static_dbg m;
    m_dynamic = dynamic m;
    m_hybrid = hybrid m;
  }
