(** Debug-information quality metrics — the four methods of the paper's
    Section II, each producing availability of variables, line coverage,
    and their product (the headline score). *)

type score = { availability : float; line_coverage : float; product : float }

type inputs = {
  defranges : Minic.Defranges.t;  (** static definition ranges *)
  unopt_trace : Debugger.trace;  (** the O0 baseline session *)
  opt_trace : Debugger.trace;  (** the optimized binary's session *)
  unopt_bin : Emit.binary;
  opt_bin : Emit.binary;
}

val line_coverage_of_traces : Debugger.trace -> Debugger.trace -> float
(** Fraction of the baseline session's stepped lines also stepped in the
    optimized session (the line-coverage factor of {!dynamic}). *)

val dynamic : inputs -> score
(** Assaiante et al.: per stepped line, the ratio of variables visible in
    the optimized vs the unoptimized session. Underestimates, because the
    O0 baseline over-reports (frame variables visible before their first
    assignment). *)

val static : inputs -> score
(** Stinnett & Kell: per-variable coverage of the static definition range
    by the binary's debug symbols, measured over binary addresses; all
    statement lines (dead code included) form the line baseline.
    Overestimates: deleted code leaves the denominator, and unusable
    entries count. *)

val static_dbg : inputs -> score
(** The static method with baselines restricted to lines stepped at O0
    (Table I's refined variant). *)

val hybrid : inputs -> score
(** This paper's method: the dynamic measurement with both traces cleaned
    against static definition ranges, removing the O0 artifact. *)

type all_methods = {
  m_static : score;
  m_static_dbg : score;
  m_dynamic : score;
  m_hybrid : score;
}

val all : inputs -> all_methods
