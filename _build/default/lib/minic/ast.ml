(** Abstract syntax for MiniC, the C-like source language of the
    reproduction.

    MiniC is deliberately small — scalars are machine integers, arrays are
    fixed-size and one-dimensional — but it has everything the paper's
    debug-information dynamics depend on: lexically-scoped local variables,
    parameters, globals, structured control flow, and function calls.
    Every expression and statement carries the 1-based source line it
    starts on; line identity is what the line table, the debugger and the
    metrics all speak. *)

type unop =
  | Neg  (** arithmetic negation [-e] *)
  | Lnot  (** logical not [!e], yields 0 or 1 *)
  | Bnot  (** bitwise complement [~e] *)

type binop =
  | Add
  | Sub
  | Mul
  | Div  (** truncated toward zero; division by zero evaluates to 0 *)
  | Rem  (** remainder; by zero evaluates to 0 *)
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Land  (** short-circuit logical and *)
  | Lor  (** short-circuit logical or *)

type expr = { edesc : edesc; eline : int }

and edesc =
  | Int of int
  | Var of string
  | Index of string * expr  (** array element [a[i]] *)
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Call of string * expr list
  | Input  (** [input()]: next value of the test input, 0 at end *)
  | Eof  (** [eof()]: 1 when the test input is exhausted, else 0 *)

type stmt = { sdesc : sdesc; sline : int }

and sdesc =
  | Decl_scalar of string * expr option
      (** [int x;] or [int x = e;] — uninitialized scalars read as 0 *)
  | Decl_array of string * int  (** [int a[N];] — zero-initialized *)
  | Assign of string * expr
  | Assign_index of string * expr * expr  (** [a[i] = e;] *)
  | If of expr * block * block  (** else-less [if] has an empty else block *)
  | While of expr * block
  | For of stmt option * expr option * stmt option * block
      (** [for (init; cond; step) body]; [continue] jumps to [step] *)
  | Return of expr option
  | Break
  | Continue
  | Expr of expr  (** expression statement, e.g. a call for effect *)
  | Output of expr  (** [output(e);] appends [e] to the program output *)

and block = { stmts : stmt list; end_line : int }
(** A brace-delimited block; [end_line] is the closing brace's line, used
    to bound variable scopes in the definition-range analysis. *)

type func = {
  fname : string;
  params : string list;
  body : block;
  fline : int;  (** line of the function header *)
}

type global =
  | Gscalar of string * int  (** global scalar with constant initializer *)
  | Garray of string * int  (** zero-initialized global array of size N *)

type program = { globals : global list; funcs : func list }

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Rem -> "%"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Land -> "&&"
  | Lor -> "||"

let unop_name = function Neg -> "-" | Lnot -> "!" | Bnot -> "~"

(** [find_func p name] looks a function up by name. *)
let find_func p name = List.find_opt (fun f -> f.fname = name) p.funcs

(** [max_line p] is the largest source line mentioned anywhere in [p],
    used to size line-indexed tables. *)
let max_line p =
  let m = ref 0 in
  let see line = if line > !m then m := line in
  let rec expr e =
    see e.eline;
    match e.edesc with
    | Int _ | Var _ | Input | Eof -> ()
    | Index (_, i) -> expr i
    | Unary (_, a) -> expr a
    | Binary (_, a, b) ->
        expr a;
        expr b
    | Call (_, args) -> List.iter expr args
  and stmt s =
    see s.sline;
    match s.sdesc with
    | Decl_scalar (_, None) | Decl_array _ | Break | Continue -> ()
    | Decl_scalar (_, Some e) | Assign (_, e) | Expr e | Output e -> expr e
    | Assign_index (_, i, e) ->
        expr i;
        expr e
    | If (c, b1, b2) ->
        expr c;
        block b1;
        block b2
    | While (c, b) ->
        expr c;
        block b
    | For (init, cond, step, b) ->
        Option.iter stmt init;
        Option.iter expr cond;
        Option.iter stmt step;
        block b
    | Return e -> Option.iter expr e
  and block b =
    see b.end_line;
    List.iter stmt b.stmts
  in
  List.iter
    (fun f ->
      see f.fline;
      block f.body)
    p.funcs;
  !m
