lib/minic/typecheck.ml: Ast Hashtbl List Option Parser Printf
