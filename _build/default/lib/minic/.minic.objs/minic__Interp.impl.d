lib/minic/interp.ml: Arith Array Ast Fun Hashtbl List Option
