lib/minic/defranges.ml: Ast Hashtbl Int List Option Set
