(** A direct AST interpreter for MiniC — a reference semantics
    independent of the whole IR/backend/VM path.

    Used as the third leg of differential testing: the interpreter, the
    O0 build and every optimized build must agree on all outputs. Shares
    the operator semantics with the IR and the VM ([Arith] is the single
    source of arithmetic truth), and mirrors the runtime conventions:
    uninitialized scalars read 0, arrays are zero-initialized, indices
    wrap modulo the array size, division by zero yields 0. *)

open Ast

exception Step_limit

type value_cell = Scalar of int ref | Array of int array

type observer = fname:string -> line:int -> (string * value_cell) list -> unit
(** Called before executing a statement: enclosing function, source
    line, and every local/parameter visible there (MiniC forbids
    shadowing, so a name identifies one variable per function). *)

type state = {
  globals : (string, value_cell) Hashtbl.t;
  funcs : (string, func) Hashtbl.t;
  mutable input : int list;
  mutable output_rev : int list;
  mutable steps : int;
  max_steps : int;
  observer : observer option;
}

type frame = {
  locals : (string, value_cell) Hashtbl.t list ref;
  fr_fname : string;
}
(* A stack of scopes, innermost first. *)

exception Return_exc of int
exception Break_exc
exception Continue_exc

let wrap_index = Arith.wrap_index

let tick st =
  st.steps <- st.steps + 1;
  if st.steps > st.max_steps then raise Step_limit

let rec lookup_cell st (fr : frame) name =
  let rec in_scopes = function
    | [] -> None
    | scope :: rest -> (
        match Hashtbl.find_opt scope name with
        | Some c -> Some c
        | None -> in_scopes rest)
  in
  match in_scopes !(fr.locals) with
  | Some c -> c
  | None -> (
      match Hashtbl.find_opt st.globals name with
      | Some c -> c
      | None -> failwith ("Interp: unbound " ^ name))

and eval st fr (e : expr) =
  tick st;
  match e.edesc with
  | Int n -> n
  | Var name -> (
      match lookup_cell st fr name with
      | Scalar r -> !r
      | Array _ -> failwith "Interp: array read as scalar")
  | Index (name, idx) -> (
      let i = eval st fr idx in
      match lookup_cell st fr name with
      | Array a -> a.(wrap_index i (Array.length a))
      | Scalar _ -> failwith "Interp: scalar indexed")
  | Unary (op, a) ->
      let v = eval st fr a in
      (match op with
      | Neg -> Arith.neg v
      | Lnot -> Arith.lnot v
      | Bnot -> Arith.bnot v)
  | Binary (Land, a, b) -> if eval st fr a = 0 then 0 else if eval st fr b <> 0 then 1 else 0
  | Binary (Lor, a, b) -> if eval st fr a <> 0 then 1 else if eval st fr b <> 0 then 1 else 0
  | Binary (op, a, b) ->
      let va = eval st fr a in
      let vb = eval st fr b in
      (match op with
      | Add -> Arith.add va vb
      | Sub -> Arith.sub va vb
      | Mul -> Arith.mul va vb
      | Div -> Arith.div va vb
      | Rem -> Arith.rem va vb
      | Band -> Arith.band va vb
      | Bor -> Arith.bor va vb
      | Bxor -> Arith.bxor va vb
      | Shl -> Arith.shl va vb
      | Shr -> Arith.shr va vb
      | Eq -> Arith.ceq va vb
      | Ne -> Arith.cne va vb
      | Lt -> Arith.clt va vb
      | Le -> Arith.cle va vb
      | Gt -> Arith.cgt va vb
      | Ge -> Arith.cge va vb
      | Land | Lor -> assert false)
  | Call (f, args) ->
      let argv = List.map (eval st fr) args in
      call st f argv
  | Input -> (
      match st.input with
      | [] -> 0
      | v :: rest ->
          st.input <- rest;
          v)
  | Eof -> ( match st.input with [] -> 1 | _ -> 0)

and exec_block st fr (b : block) =
  let scope = Hashtbl.create 8 in
  fr.locals := scope :: !(fr.locals);
  Fun.protect
    ~finally:(fun () -> fr.locals := List.tl !(fr.locals))
    (fun () -> List.iter (exec_stmt st fr) b.stmts)

and exec_stmt st fr (s : stmt) =
  tick st;
  (match st.observer with
  | Some observe when s.sline > 0 ->
      let visible =
        List.concat_map
          (fun scope -> Hashtbl.fold (fun n c acc -> (n, c) :: acc) scope [])
          !(fr.locals)
      in
      observe ~fname:fr.fr_fname ~line:s.sline visible
  | _ -> ());
  match s.sdesc with
  | Decl_scalar (name, init) ->
      let v = match init with Some e -> eval st fr e | None -> 0 in
      let scope = List.hd !(fr.locals) in
      Hashtbl.replace scope name (Scalar (ref v))
  | Decl_array (name, size) ->
      let scope = List.hd !(fr.locals) in
      Hashtbl.replace scope name (Array (Array.make size 0))
  | Assign (name, e) -> (
      let v = eval st fr e in
      match lookup_cell st fr name with
      | Scalar r -> r := v
      | Array _ -> failwith "Interp: array assigned as scalar")
  | Assign_index (name, idx, e) -> (
      let i = eval st fr idx in
      let v = eval st fr e in
      match lookup_cell st fr name with
      | Array a -> a.(wrap_index i (Array.length a)) <- v
      | Scalar _ -> failwith "Interp: scalar indexed")
  | If (cond, then_b, else_b) ->
      if eval st fr cond <> 0 then exec_block st fr then_b
      else exec_block st fr else_b
  | While (cond, body) -> (
      try
        while eval st fr cond <> 0 do
          try exec_block st fr body with Continue_exc -> ()
        done
      with Break_exc -> ())
  | For (init, cond, step, body) -> (
      (* The header scope holds the induction declaration. *)
      let scope = Hashtbl.create 4 in
      fr.locals := scope :: !(fr.locals);
      Fun.protect
        ~finally:(fun () -> fr.locals := List.tl !(fr.locals))
        (fun () ->
          Option.iter (exec_stmt st fr) init;
          let continue_cond () =
            match cond with Some c -> eval st fr c <> 0 | None -> true
          in
          try
            while continue_cond () do
              (try exec_block st fr body with Continue_exc -> ());
              Option.iter (exec_stmt st fr) step
            done
          with Break_exc -> ()))
  | Return None -> raise (Return_exc 0)
  | Return (Some e) -> raise (Return_exc (eval st fr e))
  | Break -> raise Break_exc
  | Continue -> raise Continue_exc
  | Expr e -> ignore (eval st fr e)
  | Output e -> st.output_rev <- eval st fr e :: st.output_rev

and call st fname argv =
  match Hashtbl.find_opt st.funcs fname with
  | None -> failwith ("Interp: unknown function " ^ fname)
  | Some f ->
      let scope = Hashtbl.create 8 in
      List.iteri
        (fun i p ->
          let v = try List.nth argv i with _ -> 0 in
          Hashtbl.replace scope p (Scalar (ref v)))
        f.params;
      let fr = { locals = ref [ scope ]; fr_fname = fname } in
      (try
         exec_block st fr f.body;
         0
       with Return_exc v -> v)

(** [run program ~entry ~input] interprets the program from [entry],
    returning the output sequence. Raises {!Step_limit} past
    [max_steps]. *)
let run ?(max_steps = 4_000_000) ?observer (p : program) ~entry ~input =
  let globals = Hashtbl.create 16 in
  List.iter
    (function
      | Gscalar (n, v) -> Hashtbl.replace globals n (Scalar (ref v))
      | Garray (n, size) -> Hashtbl.replace globals n (Array (Array.make size 0)))
    p.globals;
  let funcs = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace funcs f.fname f) p.funcs;
  let st =
    { globals; funcs; input; output_rev = []; steps = 0; max_steps; observer }
  in
  ignore (call st entry []);
  List.rev st.output_rev
