(** Pretty-printer for MiniC programs.

    Used by the synthetic generator (to materialize generated ASTs as
    source text with stable line numbers) and in diagnostics. The printer
    emits one statement per line, so re-parsing its output yields
    one-statement-per-line programs — the layout all suite programs use. *)

open Ast

let rec expr_to_string e =
  match e.edesc with
  | Int n -> if n < 0 then Printf.sprintf "(%d)" n else string_of_int n
  | Var name -> name
  | Index (name, i) -> Printf.sprintf "%s[%s]" name (expr_to_string i)
  | Unary (op, a) -> Printf.sprintf "%s(%s)" (unop_name op) (expr_to_string a)
  | Binary (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_name op)
        (expr_to_string b)
  | Call (f, args) ->
      Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr_to_string args))
  | Input -> "input()"
  | Eof -> "eof()"

let rec stmt_lines indent s =
  let pad = String.make indent ' ' in
  match s.sdesc with
  | Decl_scalar (name, None) -> [ Printf.sprintf "%sint %s;" pad name ]
  | Decl_scalar (name, Some e) ->
      [ Printf.sprintf "%sint %s = %s;" pad name (expr_to_string e) ]
  | Decl_array (name, size) -> [ Printf.sprintf "%sint %s[%d];" pad name size ]
  | Assign (name, e) -> [ Printf.sprintf "%s%s = %s;" pad name (expr_to_string e) ]
  | Assign_index (name, i, e) ->
      [
        Printf.sprintf "%s%s[%s] = %s;" pad name (expr_to_string i)
          (expr_to_string e);
      ]
  | If (c, b1, b2) ->
      let head = Printf.sprintf "%sif (%s) {" pad (expr_to_string c) in
      let mid = block_lines (indent + 2) b1 in
      if b2.stmts = [] then (head :: mid) @ [ pad ^ "}" ]
      else
        (head :: mid)
        @ [ pad ^ "} else {" ]
        @ block_lines (indent + 2) b2
        @ [ pad ^ "}" ]
  | While (c, b) ->
      (Printf.sprintf "%swhile (%s) {" pad (expr_to_string c)
      :: block_lines (indent + 2) b)
      @ [ pad ^ "}" ]
  | For (init, cond, step, b) ->
      let part f = function None -> "" | Some x -> f x in
      let simple s0 =
        match stmt_lines 0 s0 with
        | [ one ] -> String.sub one 0 (String.length one - 1) (* drop ';' *)
        | _ -> invalid_arg "Pretty: complex statement in for header"
      in
      (Printf.sprintf "%sfor (%s; %s; %s) {" pad (part simple init)
         (part expr_to_string cond) (part simple step)
      :: block_lines (indent + 2) b)
      @ [ pad ^ "}" ]
  | Return None -> [ pad ^ "return;" ]
  | Return (Some e) -> [ Printf.sprintf "%sreturn %s;" pad (expr_to_string e) ]
  | Break -> [ pad ^ "break;" ]
  | Continue -> [ pad ^ "continue;" ]
  | Expr e -> [ Printf.sprintf "%s%s;" pad (expr_to_string e) ]
  | Output e -> [ Printf.sprintf "%soutput(%s);" pad (expr_to_string e) ]

and block_lines indent (b : block) = List.concat_map (stmt_lines indent) b.stmts

let func_lines f =
  let params = String.concat ", " (List.map (fun p -> "int " ^ p) f.params) in
  (Printf.sprintf "int %s(%s) {" f.fname params :: block_lines 2 f.body)
  @ [ "}" ]

(** [program_to_string p] renders [p] as MiniC source text. Note that line
    numbers in the rendered text are positional, not the AST's [sline]
    values; re-parse the output to obtain a consistent program. *)
let program_to_string (p : program) =
  let globals =
    List.map
      (function
        | Gscalar (n, 0) -> Printf.sprintf "int %s;" n
        | Gscalar (n, v) -> Printf.sprintf "int %s = %d;" n v
        | Garray (n, size) -> Printf.sprintf "int %s[%d];" n size)
      p.globals
  in
  let funcs = List.concat_map (fun f -> func_lines f @ [ "" ]) p.funcs in
  String.concat "\n" (globals @ ("" :: funcs)) ^ "\n"
