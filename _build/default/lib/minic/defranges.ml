(** Static source analysis of variable definition ranges.

    This reproduces the paper's ~400-line AST tool (Section III-C): for
    each function-local variable (parameters included) it computes the
    source lines on which the variable is (a) lexically in scope and
    (b) past its first textual assignment — the range on which a debugger
    *should* be able to show a value. The hybrid metric (Section II)
    intersects the unoptimized baseline with these ranges, correcting the
    DWARF artifact where O0 frame-resident variables appear visible before
    they are ever assigned.

    Globals are intentionally excluded: they are always memory-resident
    and available, and the paper's availability metric concerns function
    variables. *)

open Ast

module Int_set = Set.Make (Int)

type var_range = {
  func : string;
  var : string;
  is_array : bool;
  is_param : bool;
  scope_start : int;  (** first line on which the variable is in scope *)
  scope_end : int;  (** last line on which the variable is in scope *)
  def_start : int option;
      (** first line at which the variable is assigned; [None] for a
          variable that is never assigned *)
}

type t = {
  vars : var_range list;
  by_key : (string * string, var_range) Hashtbl.t;
  stmt_lines : (string, Int_set.t) Hashtbl.t;
      (** per function: lines that hold a statement *)
}

(* Record the first textual assignment line for each variable of a
   function. [min_assign] maps variable name to the smallest line that
   assigns it. *)
let analyze_function (f : func) =
  let vars = ref [] in
  let min_assign : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let stmt_lines = ref Int_set.empty in
  let note_assign name line =
    match Hashtbl.find_opt min_assign name with
    | Some l when l <= line -> ()
    | _ -> Hashtbl.replace min_assign name line
  in
  let rec walk_stmt scope_end s =
    stmt_lines := Int_set.add s.sline !stmt_lines;
    match s.sdesc with
    | Decl_scalar (name, init) ->
        if init <> None then note_assign name s.sline;
        vars :=
          (name, false, s.sline, scope_end, Option.map (fun _ -> s.sline) init)
          :: !vars
    | Decl_array (name, _) ->
        (* Arrays are zero-initialized, hence defined at declaration. *)
        vars := (name, true, s.sline, scope_end, Some s.sline) :: !vars
    | Assign (name, _) -> note_assign name s.sline
    | Assign_index (name, _, _) -> note_assign name s.sline
    | If (_, b1, b2) ->
        walk_block b1;
        walk_block b2
    | While (_, body) -> walk_block body
    | For (init, _, step, body) ->
        (* Header declarations scope over the whole loop. *)
        Option.iter (walk_stmt body.end_line) init;
        Option.iter (walk_stmt body.end_line) step;
        walk_block body
    | Return _ | Break | Continue | Expr _ | Output _ -> ()
  and walk_block (b : block) = List.iter (walk_stmt b.end_line) b.stmts in
  walk_block f.body;
  let param_ranges =
    List.map
      (fun p ->
        {
          func = f.fname;
          var = p;
          is_array = false;
          is_param = true;
          scope_start = f.fline;
          scope_end = f.body.end_line;
          (* Parameters are defined on entry. *)
          def_start = Some f.fline;
        })
      f.params
  in
  let local_ranges =
    List.rev_map
      (fun (name, is_array, decl_line, scope_end, init_line) ->
        let def_start =
          match init_line with
          | Some l -> Some l
          | None -> (
              match Hashtbl.find_opt min_assign name with
              | Some l when l >= decl_line -> Some l
              | Some _ | None -> (
                  (* An assignment textually before the declaration can
                     only target a same-named variable in another scope —
                     ruled out by the no-shadowing check — or a global.
                     Fall back to any recorded assignment. *)
                  match Hashtbl.find_opt min_assign name with
                  | Some l -> Some (max l decl_line)
                  | None -> None))
        in
        {
          func = f.fname;
          var = name;
          is_array;
          is_param = false;
          scope_start = decl_line;
          scope_end;
          def_start;
        })
      !vars
  in
  (param_ranges @ local_ranges, !stmt_lines)

(** [analyze p] runs the definition-range analysis on every function. *)
let analyze (p : program) =
  let by_key = Hashtbl.create 64 in
  let stmt_lines = Hashtbl.create 16 in
  let vars =
    List.concat_map
      (fun f ->
        let ranges, lines = analyze_function f in
        Hashtbl.replace stmt_lines f.fname lines;
        List.iter (fun r -> Hashtbl.replace by_key (r.func, r.var) r) ranges;
        ranges)
      p.funcs
  in
  { vars; by_key; stmt_lines }

(** [find t ~func ~var] is the range record for a function variable. *)
let find t ~func ~var = Hashtbl.find_opt t.by_key (func, var)

(** [in_def_range t ~func ~var ~line] is true when the static analysis
    says the variable should hold a meaningful value on [line]. *)
let in_def_range t ~func ~var ~line =
  match find t ~func ~var with
  | None -> false
  | Some r -> (
      match r.def_start with
      | None -> false
      | Some d -> line >= d && line >= r.scope_start && line <= r.scope_end)

(** [in_scope t ~func ~var ~line] ignores the definition refinement and
    only checks lexical scope — the (over-approximate) view a purely
    static method has of variable visibility. *)
let in_scope t ~func ~var ~line =
  match find t ~func ~var with
  | None -> false
  | Some r -> line >= r.scope_start && line <= r.scope_end

(** [defined_at t ~func ~line] lists the variables statically defined and
    in scope at [line] of [func]. *)
let defined_at t ~func ~line =
  List.filter_map
    (fun r ->
      if r.func = func && in_def_range t ~func ~var:r.var ~line then
        Some r.var
      else None)
    t.vars

(** [statement_lines t ~func] is the set of source lines holding a
    statement of [func] — the static steppability baseline. *)
let statement_lines t ~func =
  match Hashtbl.find_opt t.stmt_lines func with
  | Some s -> s
  | None -> Int_set.empty

(** [vars_of t ~func] lists all tracked variables of [func]. *)
let vars_of t ~func = List.filter (fun r -> r.func = func) t.vars
