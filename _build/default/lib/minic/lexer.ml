(** Hand-written lexer for MiniC.

    Produces a token stream with per-token line numbers. Supports [//]
    line comments and [/* ... */] block comments. *)

type token =
  | INT of int
  | IDENT of string
  | KW_INT
  | KW_VOID
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_FOR
  | KW_RETURN
  | KW_BREAK
  | KW_CONTINUE
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | PIPE
  | CARET
  | TILDE
  | BANG
  | SHL
  | SHR
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | ANDAND
  | OROR
  | EOF

let token_name = function
  | INT n -> string_of_int n
  | IDENT s -> s
  | KW_INT -> "int"
  | KW_VOID -> "void"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_WHILE -> "while"
  | KW_FOR -> "for"
  | KW_RETURN -> "return"
  | KW_BREAK -> "break"
  | KW_CONTINUE -> "continue"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | ASSIGN -> "="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | AMP -> "&"
  | PIPE -> "|"
  | CARET -> "^"
  | TILDE -> "~"
  | BANG -> "!"
  | SHL -> "<<"
  | SHR -> ">>"
  | EQ -> "=="
  | NE -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | ANDAND -> "&&"
  | OROR -> "||"
  | EOF -> "<eof>"

exception Error of string * int
(** [Error (message, line)] *)

let keyword_of_string = function
  | "int" -> Some KW_INT
  | "void" -> Some KW_VOID
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "for" -> Some KW_FOR
  | "return" -> Some KW_RETURN
  | "break" -> Some KW_BREAK
  | "continue" -> Some KW_CONTINUE
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(** [tokenize src] lexes the whole source, returning [(token, line)] pairs
    ending with [EOF]. Raises [Error] on malformed input. *)
let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push tok = toks := (tok, !line) :: !toks in
  let peek k = if !i + k < n then src.[!i + k] else '\000' in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then (
      incr line;
      incr i)
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && peek 1 = '/' then
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    else if c = '/' && peek 1 = '*' then (
      let start_line = !line in
      i := !i + 2;
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '\n' then incr line;
        if src.[!i] = '*' && peek 1 = '/' then (
          closed := true;
          i := !i + 2)
        else incr i
      done;
      if not !closed then raise (Error ("unterminated block comment", start_line)))
    else if is_digit c then (
      let j = ref !i in
      while !j < n && is_digit src.[!j] do
        incr j
      done;
      let text = String.sub src !i (!j - !i) in
      (match int_of_string_opt text with
      | Some v -> push (INT v)
      | None -> raise (Error ("integer literal out of range: " ^ text, !line)));
      i := !j)
    else if is_ident_start c then (
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do
        incr j
      done;
      let text = String.sub src !i (!j - !i) in
      (match keyword_of_string text with
      | Some kw -> push kw
      | None -> push (IDENT text));
      i := !j)
    else begin
      let two tok =
        push tok;
        i := !i + 2
      in
      let one tok =
        push tok;
        incr i
      in
      match (c, peek 1) with
      | '<', '<' -> two SHL
      | '>', '>' -> two SHR
      | '=', '=' -> two EQ
      | '!', '=' -> two NE
      | '<', '=' -> two LE
      | '>', '=' -> two GE
      | '&', '&' -> two ANDAND
      | '|', '|' -> two OROR
      | '<', _ -> one LT
      | '>', _ -> one GT
      | '(', _ -> one LPAREN
      | ')', _ -> one RPAREN
      | '{', _ -> one LBRACE
      | '}', _ -> one RBRACE
      | '[', _ -> one LBRACKET
      | ']', _ -> one RBRACKET
      | ';', _ -> one SEMI
      | ',', _ -> one COMMA
      | '=', _ -> one ASSIGN
      | '+', _ -> one PLUS
      | '-', _ -> one MINUS
      | '*', _ -> one STAR
      | '/', _ -> one SLASH
      | '%', _ -> one PERCENT
      | '&', _ -> one AMP
      | '|', _ -> one PIPE
      | '^', _ -> one CARET
      | '~', _ -> one TILDE
      | '!', _ -> one BANG
      | _ -> raise (Error (Printf.sprintf "unexpected character %C" c, !line))
    end
  done;
  push EOF;
  List.rev !toks
