(** Semantic checks for MiniC programs.

    Everything is an integer, so "typechecking" here means scope and shape
    checking: variables are declared before use, scalars and arrays are
    used consistently, calls match arities, and — important for the
    metrics — no local variable shadows another local or parameter of the
    same function, so that a variable is identified by
    [(function, name)] across all builds of the program. Locals may
    shadow globals. *)

open Ast

exception Error of string * int

type var_kind = Scalar | Array of int

type env = {
  globals : (string, var_kind) Hashtbl.t;
  funcs : (string, int) Hashtbl.t;  (** arity by name *)
}

let fail line fmt = Printf.ksprintf (fun m -> raise (Error (m, line))) fmt

let reserved = [ "input"; "eof"; "output" ]

let check_program (p : program) =
  let env = { globals = Hashtbl.create 16; funcs = Hashtbl.create 16 } in
  List.iter
    (fun g ->
      let name, kind =
        match g with
        | Gscalar (n, _) -> (n, Scalar)
        | Garray (n, size) -> (n, Array size)
      in
      if Hashtbl.mem env.globals name then fail 0 "duplicate global %s" name;
      if List.mem name reserved then fail 0 "global %s shadows a builtin" name;
      Hashtbl.replace env.globals name kind)
    p.globals;
  List.iter
    (fun f ->
      if Hashtbl.mem env.funcs f.fname then
        fail f.fline "duplicate function %s" f.fname;
      if List.mem f.fname reserved then
        fail f.fline "function %s shadows a builtin" f.fname;
      Hashtbl.replace env.funcs f.fname (List.length f.params))
    p.funcs;
  let check_func f =
    (* All names bound in this function, for the no-shadowing rule. *)
    let locals : (string, var_kind) Hashtbl.t = Hashtbl.create 16 in
    let declare line name kind =
      if Hashtbl.mem locals name then
        fail line "variable %s shadows another local in %s" name f.fname;
      if List.mem name reserved then
        fail line "variable %s shadows a builtin" name;
      Hashtbl.replace locals name kind
    in
    List.iter (fun param -> declare f.fline param Scalar) f.params;
    (* Scope checking uses a stack of name lists so that block-local
       declarations go out of scope, even though their names stay
       reserved function-wide. *)
    let lookup in_scope name =
      if List.exists (List.mem name) in_scope then
        Some (Hashtbl.find locals name)
      else Hashtbl.find_opt env.globals name
    in
    let rec check_expr in_scope e =
      match e.edesc with
      | Int _ | Input | Eof -> ()
      | Var name -> (
          match lookup in_scope name with
          | Some Scalar -> ()
          | Some (Array _) -> fail e.eline "array %s used without index" name
          | None -> fail e.eline "undeclared variable %s" name)
      | Index (name, idx) -> (
          check_expr in_scope idx;
          match lookup in_scope name with
          | Some (Array _) -> ()
          | Some Scalar -> fail e.eline "scalar %s used with index" name
          | None -> fail e.eline "undeclared array %s" name)
      | Unary (_, a) -> check_expr in_scope a
      | Binary (_, a, b) ->
          check_expr in_scope a;
          check_expr in_scope b
      | Call (name, args) -> (
          List.iter (check_expr in_scope) args;
          match Hashtbl.find_opt env.funcs name with
          | Some arity ->
              if arity <> List.length args then
                fail e.eline "call to %s with %d args, expected %d" name
                  (List.length args) arity
          | None -> fail e.eline "call to undeclared function %s" name)
    in
    let rec check_stmt in_scope in_loop s =
      match s.sdesc with
      | Decl_scalar (name, init) ->
          Option.iter (check_expr in_scope) init;
          declare s.sline name Scalar;
          (* The caller extends the innermost scope; see check_block. *)
          ()
      | Decl_array (name, size) -> declare s.sline name (Array size)
      | Assign (name, e) -> (
          check_expr in_scope e;
          match lookup in_scope name with
          | Some Scalar -> ()
          | Some (Array _) -> fail s.sline "cannot assign whole array %s" name
          | None -> fail s.sline "undeclared variable %s" name)
      | Assign_index (name, idx, e) -> (
          check_expr in_scope idx;
          check_expr in_scope e;
          match lookup in_scope name with
          | Some (Array _) -> ()
          | Some Scalar -> fail s.sline "scalar %s used with index" name
          | None -> fail s.sline "undeclared array %s" name)
      | If (cond, b1, b2) ->
          check_expr in_scope cond;
          check_block in_scope in_loop b1;
          check_block in_scope in_loop b2
      | While (cond, body) ->
          check_expr in_scope cond;
          check_block in_scope true body
      | For (init, cond, step, body) ->
          (* The [for] header introduces its own small scope. *)
          let header_scope = ref [] in
          Option.iter
            (fun s0 ->
              check_stmt (!header_scope :: in_scope) in_loop s0;
              match s0.sdesc with
              | Decl_scalar (name, _) -> header_scope := name :: !header_scope
              | _ -> ())
            init;
          let scopes = !header_scope :: in_scope in
          Option.iter (check_expr scopes) cond;
          check_block scopes true body;
          Option.iter
            (fun s0 ->
              (* The step executes inside the loop scope, including the
                 body's own declarations being out of scope. *)
              check_stmt scopes true s0)
            step
      | Return e -> Option.iter (check_expr in_scope) e
      | Break -> if not in_loop then fail s.sline "break outside loop"
      | Continue -> if not in_loop then fail s.sline "continue outside loop"
      | Expr e -> check_expr in_scope e
      | Output e -> check_expr in_scope e
    and check_block in_scope in_loop (b : block) =
      let names = ref [] in
      List.iter
        (fun s ->
          check_stmt (!names :: in_scope) in_loop s;
          match s.sdesc with
          | Decl_scalar (name, _) | Decl_array (name, _) ->
              names := name :: !names
          | _ -> ())
        b.stmts
    in
    check_block [ f.params ] false f.body
  in
  List.iter check_func p.funcs

(** [parse_and_check src] parses [src] and runs all semantic checks,
    returning the checked program. *)
let parse_and_check src =
  let p = Parser.parse_program src in
  check_program p;
  p
