(** Recursive-descent parser for MiniC.

    Expression parsing uses precedence climbing with C's precedence
    levels. Statement bodies of [if]/[while]/[for] may be either a braced
    block or a single statement (wrapped into a one-statement block). *)

open Ast

exception Error of string * int
(** [Error (message, line)] *)

type state = { mutable toks : (Lexer.token * int) list }

let peek st = match st.toks with [] -> (Lexer.EOF, 0) | t :: _ -> t
let peek2 st = match st.toks with _ :: t :: _ -> t | _ -> (Lexer.EOF, 0)

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let cur_line st = snd (peek st)

let fail st msg = raise (Error (msg, cur_line st))

let expect st tok =
  let got, line = peek st in
  if got = tok then advance st
  else
    raise
      (Error
         ( Printf.sprintf "expected %s but found %s" (Lexer.token_name tok)
             (Lexer.token_name got),
           line ))

let expect_ident st =
  match peek st with
  | Lexer.IDENT name, _ ->
      advance st;
      name
  | got, line ->
      raise
        (Error
           ( Printf.sprintf "expected identifier but found %s"
               (Lexer.token_name got),
             line ))

let expect_int st =
  match peek st with
  | Lexer.INT v, _ ->
      advance st;
      v
  | Lexer.MINUS, _ -> (
      advance st;
      match peek st with
      | Lexer.INT v, _ ->
          advance st;
          -v
      | got, line ->
          raise
            (Error
               ( Printf.sprintf "expected integer but found %s"
                   (Lexer.token_name got),
                 line )))
  | got, line ->
      raise
        (Error
           ( Printf.sprintf "expected integer but found %s"
               (Lexer.token_name got),
             line ))

(* Binary operator precedence, loosest first (C-like). *)
let precedence = function
  | Lexer.OROR -> Some (1, Lor)
  | Lexer.ANDAND -> Some (2, Land)
  | Lexer.PIPE -> Some (3, Bor)
  | Lexer.CARET -> Some (4, Bxor)
  | Lexer.AMP -> Some (5, Band)
  | Lexer.EQ -> Some (6, Eq)
  | Lexer.NE -> Some (6, Ne)
  | Lexer.LT -> Some (7, Lt)
  | Lexer.LE -> Some (7, Le)
  | Lexer.GT -> Some (7, Gt)
  | Lexer.GE -> Some (7, Ge)
  | Lexer.SHL -> Some (8, Shl)
  | Lexer.SHR -> Some (8, Shr)
  | Lexer.PLUS -> Some (9, Add)
  | Lexer.MINUS -> Some (9, Sub)
  | Lexer.STAR -> Some (10, Mul)
  | Lexer.SLASH -> Some (10, Div)
  | Lexer.PERCENT -> Some (10, Rem)
  | _ -> None

let rec parse_expr st = parse_binary st 0

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match precedence (fst (peek st)) with
    | Some (prec, op) when prec >= min_prec ->
        let line = cur_line st in
        advance st;
        let rhs = parse_binary st (prec + 1) in
        lhs := { edesc = Binary (op, !lhs, rhs); eline = line }
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st =
  let line = cur_line st in
  match fst (peek st) with
  | Lexer.MINUS ->
      advance st;
      { edesc = Unary (Neg, parse_unary st); eline = line }
  | Lexer.BANG ->
      advance st;
      { edesc = Unary (Lnot, parse_unary st); eline = line }
  | Lexer.TILDE ->
      advance st;
      { edesc = Unary (Bnot, parse_unary st); eline = line }
  | _ -> parse_primary st

and parse_primary st =
  let line = cur_line st in
  match fst (peek st) with
  | Lexer.INT v ->
      advance st;
      { edesc = Int v; eline = line }
  | Lexer.LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st Lexer.RPAREN;
      e
  | Lexer.IDENT name -> (
      advance st;
      match fst (peek st) with
      | Lexer.LPAREN ->
          advance st;
          let args = parse_args st in
          expect st Lexer.RPAREN;
          let desc =
            match (name, args) with
            | "input", [] -> Input
            | "eof", [] -> Eof
            | _ -> Call (name, args)
          in
          { edesc = desc; eline = line }
      | Lexer.LBRACKET ->
          advance st;
          let idx = parse_expr st in
          expect st Lexer.RBRACKET;
          { edesc = Index (name, idx); eline = line }
      | _ -> { edesc = Var name; eline = line })
  | got -> fail st (Printf.sprintf "unexpected token %s" (Lexer.token_name got))

and parse_args st =
  if fst (peek st) = Lexer.RPAREN then []
  else
    let rec loop acc =
      let e = parse_expr st in
      if fst (peek st) = Lexer.COMMA then (
        advance st;
        loop (e :: acc))
      else List.rev (e :: acc)
    in
    loop []

(* A "simple statement" is one legal without a trailing semicolon: used in
   [for] headers. *)
let parse_simple st =
  let line = cur_line st in
  match peek st with
  | Lexer.KW_INT, _ ->
      advance st;
      let name = expect_ident st in
      expect st Lexer.ASSIGN;
      let e = parse_expr st in
      { sdesc = Decl_scalar (name, Some e); sline = line }
  | Lexer.IDENT name, _ -> (
      advance st;
      match fst (peek st) with
      | Lexer.ASSIGN ->
          advance st;
          let e = parse_expr st in
          { sdesc = Assign (name, e); sline = line }
      | Lexer.LBRACKET ->
          advance st;
          let idx = parse_expr st in
          expect st Lexer.RBRACKET;
          expect st Lexer.ASSIGN;
          let e = parse_expr st in
          { sdesc = Assign_index (name, idx, e); sline = line }
      | Lexer.LPAREN ->
          advance st;
          let args = parse_args st in
          expect st Lexer.RPAREN;
          let desc =
            match (name, args) with
            | "input", [] -> Input
            | "eof", [] -> Eof
            | _ -> Call (name, args)
          in
          { sdesc = Expr { edesc = desc; eline = line }; sline = line }
      | got ->
          fail st
            (Printf.sprintf "expected assignment or call, found %s"
               (Lexer.token_name got)))
  | got, _ ->
      fail st
        (Printf.sprintf "expected simple statement, found %s"
           (Lexer.token_name got))

let rec parse_stmt st =
  let line = cur_line st in
  match fst (peek st) with
  | Lexer.KW_INT -> (
      advance st;
      let name = expect_ident st in
      match fst (peek st) with
      | Lexer.LBRACKET ->
          advance st;
          let size = expect_int st in
          expect st Lexer.RBRACKET;
          expect st Lexer.SEMI;
          if size <= 0 then fail st "array size must be positive";
          { sdesc = Decl_array (name, size); sline = line }
      | Lexer.ASSIGN ->
          advance st;
          let e = parse_expr st in
          expect st Lexer.SEMI;
          { sdesc = Decl_scalar (name, Some e); sline = line }
      | _ ->
          expect st Lexer.SEMI;
          { sdesc = Decl_scalar (name, None); sline = line })
  | Lexer.KW_IF ->
      advance st;
      expect st Lexer.LPAREN;
      let cond = parse_expr st in
      expect st Lexer.RPAREN;
      let then_blk = parse_body st in
      let else_blk =
        if fst (peek st) = Lexer.KW_ELSE then (
          advance st;
          parse_body st)
        else { stmts = []; end_line = then_blk.end_line }
      in
      { sdesc = If (cond, then_blk, else_blk); sline = line }
  | Lexer.KW_WHILE ->
      advance st;
      expect st Lexer.LPAREN;
      let cond = parse_expr st in
      expect st Lexer.RPAREN;
      let body = parse_body st in
      { sdesc = While (cond, body); sline = line }
  | Lexer.KW_FOR ->
      advance st;
      expect st Lexer.LPAREN;
      let init =
        if fst (peek st) = Lexer.SEMI then None else Some (parse_simple st)
      in
      expect st Lexer.SEMI;
      let cond =
        if fst (peek st) = Lexer.SEMI then None else Some (parse_expr st)
      in
      expect st Lexer.SEMI;
      let step =
        if fst (peek st) = Lexer.RPAREN then None else Some (parse_simple st)
      in
      expect st Lexer.RPAREN;
      let body = parse_body st in
      { sdesc = For (init, cond, step, body); sline = line }
  | Lexer.KW_RETURN ->
      advance st;
      let value =
        if fst (peek st) = Lexer.SEMI then None else Some (parse_expr st)
      in
      expect st Lexer.SEMI;
      { sdesc = Return value; sline = line }
  | Lexer.KW_BREAK ->
      advance st;
      expect st Lexer.SEMI;
      { sdesc = Break; sline = line }
  | Lexer.KW_CONTINUE ->
      advance st;
      expect st Lexer.SEMI;
      { sdesc = Continue; sline = line }
  | Lexer.IDENT "output" when fst (peek2 st) = Lexer.LPAREN ->
      advance st;
      advance st;
      let e = parse_expr st in
      expect st Lexer.RPAREN;
      expect st Lexer.SEMI;
      { sdesc = Output e; sline = line }
  | Lexer.IDENT _ ->
      let s = parse_simple st in
      expect st Lexer.SEMI;
      s
  | got -> fail st (Printf.sprintf "unexpected token %s" (Lexer.token_name got))

(* Body of a control construct: braced block or single statement. *)
and parse_body st =
  if fst (peek st) = Lexer.LBRACE then parse_block st
  else
    let s = parse_stmt st in
    { stmts = [ s ]; end_line = s.sline }

and parse_block st =
  expect st Lexer.LBRACE;
  let rec loop acc =
    match fst (peek st) with
    | Lexer.RBRACE ->
        let end_line = cur_line st in
        advance st;
        { stmts = List.rev acc; end_line }
    | Lexer.EOF -> fail st "unexpected end of input inside block"
    | _ -> loop (parse_stmt st :: acc)
  in
  loop []

let parse_params st =
  expect st Lexer.LPAREN;
  if fst (peek st) = Lexer.RPAREN then (
    advance st;
    [])
  else
    let rec loop acc =
      (match fst (peek st) with
      | Lexer.KW_INT -> advance st
      | _ -> fail st "expected parameter type 'int'");
      let name = expect_ident st in
      if fst (peek st) = Lexer.COMMA then (
        advance st;
        loop (name :: acc))
      else (
        expect st Lexer.RPAREN;
        List.rev (name :: acc))
    in
    loop []

let parse_toplevel st (globals, funcs) =
  let line = cur_line st in
  match fst (peek st) with
  | Lexer.KW_INT | Lexer.KW_VOID -> (
      advance st;
      let name = expect_ident st in
      match fst (peek st) with
      | Lexer.LPAREN ->
          let params = parse_params st in
          let body = parse_block st in
          (globals, { fname = name; params; body; fline = line } :: funcs)
      | Lexer.LBRACKET ->
          advance st;
          let size = expect_int st in
          expect st Lexer.RBRACKET;
          expect st Lexer.SEMI;
          if size <= 0 then fail st "array size must be positive";
          (Garray (name, size) :: globals, funcs)
      | Lexer.ASSIGN ->
          advance st;
          let v = expect_int st in
          expect st Lexer.SEMI;
          (Gscalar (name, v) :: globals, funcs)
      | _ ->
          expect st Lexer.SEMI;
          (Gscalar (name, 0) :: globals, funcs))
  | got ->
      fail st
        (Printf.sprintf "expected declaration, found %s" (Lexer.token_name got))

(** [parse_program src] lexes and parses a whole MiniC source file.
    Raises {!Error} or {!Lexer.Error} on malformed input. *)
let parse_program src =
  let st = { toks = Lexer.tokenize src } in
  let rec loop acc =
    if fst (peek st) = Lexer.EOF then acc else loop (parse_toplevel st acc)
  in
  let globals, funcs = loop ([], []) in
  { globals = List.rev globals; funcs = List.rev funcs }
