(** DWARF-like debug information attached to emitted binaries: the line
    table and per-variable location lists, and the queries a debugger
    and the static metrics make against them. *)

type location =
  | In_reg of int  (** physical register *)
  | In_slot of int  (** frame slot (word offset within the frame) *)
  | Const of int  (** value was constant-folded *)

type range = {
  lo : int;
  hi : int;  (** half-open [lo, hi) address range *)
  where : location;
  usable : bool;
      (** [false] for entry-value-style entries present in the debug
          info (counted by static readers) but not materializable by the
          debugger — the paper's static-overestimation artifact *)
}

type var_info = {
  vi_var : Ir.var_id;
  vi_is_array : bool;
  mutable vi_ranges : range list;
}

type line_entry = { addr : int; line : int }

type t = {
  mutable line_table : line_entry list;  (** sorted by address after {!finalize} *)
  mutable vars : var_info list;
}

val empty : unit -> t

val location_to_string : location -> string

val steppable_lines : t -> int list
(** Lines with at least one line-table entry — where a breakpoint can
    land. *)

val breakpoint_addrs : t -> (int * int) list
(** [(line, addr)] pairs: the lowest address of each steppable line. *)

val line_of_addr : t -> int -> int option

val available_at : t -> int -> (Ir.var_id * location) list
(** Variables "visible with a value" at an address: covered by a usable
    location-list entry. *)

val var_ranges : t -> Ir.var_id -> range list
(** All ranges recorded for a variable (usable or not). *)

val add_line : t -> addr:int -> line:int -> unit

val finalize : t -> unit
(** Sort the line table by address; call once after emission. *)

val add_var : t -> var:Ir.var_id -> is_array:bool -> range list -> unit

val coverage_volume : t -> int
(** Total addresses covered by location lists (a volume statistic). *)
