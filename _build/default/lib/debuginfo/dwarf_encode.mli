(** Binary encoding of the debug information using the actual DWARF
    wire formats: LEB128 varints, a `.debug_line` line-number program
    (standard + special opcodes, replayed through the state machine)
    and `.debug_loc` lists of DWARF location expressions
    ([DW_OP_reg0+k], [DW_OP_fbreg], [DW_OP_consts]; entry-value entries
    wrapped in [DW_OP_entry_value] exactly as gcc emits them). *)

exception Malformed of string

val encode : Dwarfish.t -> string
(** Serialize to a blob: magic, version, `.debug_line`, `.debug_loc`. *)

val decode : string -> Dwarfish.t
(** Parse an {!encode}d blob. Raises {!Malformed} on anything
    structurally wrong; never returns partial data. *)

val section_sizes : Dwarfish.t -> int * int * int
(** Encoded sizes in bytes: (.debug_line, .debug_loc, whole blob). *)

(** {2 Wire-format primitives} (exposed for direct testing) *)

type cursor = { data : string; mutable pos : int }

val write_uleb : Buffer.t -> int -> unit
val write_sleb : Buffer.t -> int -> unit
val read_uleb : cursor -> int
val read_sleb : cursor -> int

val encode_line_program : Buffer.t -> Dwarfish.line_entry list -> unit
val decode_line_program : cursor -> Dwarfish.line_entry list
