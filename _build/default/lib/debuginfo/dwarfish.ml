(** DWARF-like debug information attached to emitted binaries.

    Two structures, mirroring what a debugger consumes:

    - the {b line table}: a map from instruction address to source line,
      from which "steppable" lines and breakpoint addresses derive;
    - {b location lists}: per source variable, a list of half-open
      address ranges with the concrete location (register, frame slot, or
      constant) holding the variable's value on that range.

    An O0 binary gives every named scalar a frame-slot location spanning
    its whole function — including addresses before the variable's first
    assignment. That over-wide range is the DWARF artifact the paper's
    hybrid metric corrects with static definition ranges. *)

type location =
  | In_reg of int  (** physical register *)
  | In_slot of int  (** frame slot (word offset within the frame) *)
  | Const of int  (** value was constant-folded; DWARF const value *)

type range = {
  lo : int;
  hi : int;
  where : location;
  usable : bool;
      (** [false] for entry-value-style entries that are present in the
          debug info (a static reader counts them) but that the debugger
          cannot materialize — the paper's "shows as in the binary but is
          unusable" artifact (Section II), which gcc produces much more
          than clang *)
}
(** Half-open address range [lo, hi). *)

type var_info = {
  vi_var : Ir.var_id;
  vi_is_array : bool;
  mutable vi_ranges : range list;
}

type line_entry = { addr : int; line : int }

type t = {
  mutable line_table : line_entry list;  (** sorted by address *)
  mutable vars : var_info list;
}

let empty () = { line_table = []; vars = [] }

let location_to_string = function
  | In_reg r -> Printf.sprintf "reg%d" r
  | In_slot s -> Printf.sprintf "frame+%d" s
  | Const n -> Printf.sprintf "const %d" n

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)

(** All source lines with at least one line-table entry: the lines a
    debugger can place a breakpoint on. *)
let steppable_lines t =
  List.sort_uniq compare (List.map (fun e -> e.line) t.line_table)

(** Breakpoint address for each steppable line: the lowest address
    carrying that line (the address [gdb]'s [tbreak FILE:LINE] picks). *)
let breakpoint_addrs t =
  let best = Hashtbl.create 64 in
  List.iter
    (fun e ->
      match Hashtbl.find_opt best e.line with
      | Some a when a <= e.addr -> ()
      | _ -> Hashtbl.replace best e.line e.addr)
    t.line_table;
  Hashtbl.fold (fun line addr acc -> (line, addr) :: acc) best []
  |> List.sort compare

(** [line_of_addr t addr] — the source line attributed to [addr]. *)
let line_of_addr t addr =
  List.find_map (fun e -> if e.addr = addr then Some e.line else None) t.line_table

(** [available_at t addr] — variables whose location list covers [addr]
    with a location the debugger can actually evaluate: "visible with a
    value" in the paper's sense. *)
let available_at t addr =
  List.filter_map
    (fun vi ->
      List.find_map
        (fun r ->
          if r.usable && addr >= r.lo && addr < r.hi then
            Some (vi.vi_var, r.where)
          else None)
        vi.vi_ranges)
    t.vars

(** [var_covered_addrs t var] — the set of addresses covered by [var]'s
    location list, for the static coverage metric. *)
let var_ranges t var =
  List.concat_map
    (fun vi -> if vi.vi_var = var then vi.vi_ranges else [])
    t.vars

let add_line t ~addr ~line = t.line_table <- { addr; line } :: t.line_table

let finalize t =
  t.line_table <- List.sort (fun a b -> compare a.addr b.addr) t.line_table

let add_var t ~var ~is_array ranges =
  match List.find_opt (fun vi -> vi.vi_var = var) t.vars with
  | Some vi -> vi.vi_ranges <- vi.vi_ranges @ ranges
  | None -> t.vars <- t.vars @ [ { vi_var = var; vi_is_array = is_array; vi_ranges = ranges } ]

(** Total number of addresses covered by location lists, a volume
    statistic used in diagnostics. *)
let coverage_volume t =
  List.fold_left
    (fun acc vi ->
      acc
      + List.fold_left (fun a r -> a + max 0 (r.hi - r.lo)) 0 vi.vi_ranges)
    0 t.vars
