lib/debuginfo/dwarfish.mli: Ir
