lib/debuginfo/dwarf_encode.mli: Buffer Dwarfish
