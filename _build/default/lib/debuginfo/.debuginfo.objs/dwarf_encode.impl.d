lib/debuginfo/dwarf_encode.ml: Buffer Char Dwarfish Ir List Printf String
