lib/debuginfo/dwarfish.ml: Hashtbl Ir List Printf
