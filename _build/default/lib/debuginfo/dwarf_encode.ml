(** Binary encoding of the debug information, using the actual DWARF
    wire formats: LEB128 varints, a `.debug_line` line-number program
    interpreted by the standard opcode state machine (special opcodes,
    [DW_LNS_advance_pc], [DW_LNS_advance_line], [DW_LNE_end_sequence]),
    and `.debug_loc` location lists whose locations are DWARF
    expressions ([DW_OP_reg0+k], [DW_OP_fbreg], [DW_OP_consts], with
    entry-value entries wrapped in [DW_OP_entry_value] exactly as gcc
    emits them).

    The paper's tooling reads this information with off-the-shelf DWARF
    readers; this module is the thin-DWARF-library substitute — a
    producer and consumer of the same encodings, exercised by roundtrip
    properties in the test suite. *)

exception Malformed of string

let failm fmt = Printf.ksprintf (fun m -> raise (Malformed m)) fmt

(* ------------------------------------------------------------------ *)
(* LEB128                                                              *)

let write_uleb buf n =
  if n < 0 then invalid_arg "write_uleb: negative";
  let rec go n =
    let byte = n land 0x7f in
    let rest = n lsr 7 in
    if rest = 0 then Buffer.add_char buf (Char.chr byte)
    else begin
      Buffer.add_char buf (Char.chr (byte lor 0x80));
      go rest
    end
  in
  go n

let write_sleb buf n =
  let rec go n =
    let byte = n land 0x7f in
    let rest = n asr 7 in
    let sign_clear = byte land 0x40 = 0 in
    if (rest = 0 && sign_clear) || (rest = -1 && not sign_clear) then
      Buffer.add_char buf (Char.chr byte)
    else begin
      Buffer.add_char buf (Char.chr (byte lor 0x80));
      go rest
    end
  in
  go n

(* A cursor over an encoded string. *)
type cursor = { data : string; mutable pos : int }

let byte c =
  if c.pos >= String.length c.data then failm "unexpected end of section";
  let b = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  b

let read_uleb c =
  let rec go shift acc =
    if shift > 63 then failm "uleb128 too long";
    let b = byte c in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let read_sleb c =
  let rec go shift acc =
    if shift > 63 then failm "sleb128 too long";
    let b = byte c in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 <> 0 then go (shift + 7) acc
    else if shift + 7 < 63 && b land 0x40 <> 0 then
      (* sign-extend *)
      acc lor (-1 lsl (shift + 7))
    else acc
  in
  go 0 0

(* ------------------------------------------------------------------ *)
(* Strings                                                             *)

let write_str buf s =
  write_uleb buf (String.length s);
  Buffer.add_string buf s

let read_str c =
  let n = read_uleb c in
  if c.pos + n > String.length c.data then failm "string past end";
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

(* ------------------------------------------------------------------ *)
(* .debug_line: the DWARF line-number program                          *)

(* Header parameters, as in real DWARF v4/v5 producers. *)
let opcode_base = 13
let line_base = -5
let line_range = 14

(* Standard opcodes we emit (subset of DWARF's 12). *)
let dw_lns_copy = 1
let dw_lns_advance_pc = 2
let dw_lns_advance_line = 3

(* Extended opcode introducer and the end-of-sequence opcode. *)
let dw_lne_end_sequence = 1

(** Encode a sorted line table as a line-number program. Each entry
    becomes either one special opcode (when both deltas fit) or
    standard advances followed by [DW_LNS_copy] — the exact strategy
    real assemblers use. *)
let encode_line_program buf (entries : Dwarfish.line_entry list) =
  write_uleb buf (List.length entries);
  let addr = ref 0 and line = ref 1 in
  List.iter
    (fun (e : Dwarfish.line_entry) ->
      let d_addr = e.Dwarfish.addr - !addr in
      let d_line = e.Dwarfish.line - !line in
      let special =
        (* opcode = (d_line - line_base) + line_range * d_addr + base *)
        if d_addr >= 0 && d_line >= line_base && d_line < line_base + line_range
        then
          let op = d_line - line_base + (line_range * d_addr) + opcode_base in
          if op <= 255 then Some op else None
        else None
      in
      (match special with
      | Some op -> Buffer.add_char buf (Char.chr op)
      | None ->
          if d_addr <> 0 then begin
            if d_addr < 0 then failm "line table not sorted by address";
            Buffer.add_char buf (Char.chr dw_lns_advance_pc);
            write_uleb buf d_addr
          end;
          if d_line <> 0 then begin
            Buffer.add_char buf (Char.chr dw_lns_advance_line);
            write_sleb buf d_line
          end;
          Buffer.add_char buf (Char.chr dw_lns_copy));
      addr := e.Dwarfish.addr;
      line := e.Dwarfish.line)
    entries;
  (* DW_LNE_end_sequence: extended opcode 0, length 1, opcode 1. *)
  Buffer.add_char buf '\000';
  write_uleb buf 1;
  Buffer.add_char buf (Char.chr dw_lne_end_sequence)

(** Replay a line-number program through the state machine. *)
let decode_line_program c : Dwarfish.line_entry list =
  let expected = read_uleb c in
  let addr = ref 0 and line = ref 1 in
  let rows = ref [] in
  let emit () = rows := { Dwarfish.addr = !addr; line = !line } :: !rows in
  let finished = ref false in
  while not !finished do
    let op = byte c in
    if op >= opcode_base then begin
      (* special opcode *)
      let adj = op - opcode_base in
      addr := !addr + (adj / line_range);
      line := !line + line_base + (adj mod line_range);
      emit ()
    end
    else if op = 0 then begin
      (* extended *)
      let len = read_uleb c in
      let ext = byte c in
      if ext = dw_lne_end_sequence then finished := true
      else begin
        (* skip unknown extended opcodes, as real readers do *)
        if len < 1 then failm "bad extended opcode length";
        c.pos <- c.pos + (len - 1)
      end
    end
    else if op = dw_lns_copy then emit ()
    else if op = dw_lns_advance_pc then addr := !addr + read_uleb c
    else if op = dw_lns_advance_line then line := !line + read_sleb c
    else failm "unknown standard opcode %d" op
  done;
  let rows = List.rev !rows in
  if List.length rows <> expected then
    failm "line program produced %d rows, header promised %d"
      (List.length rows) expected;
  rows

(* ------------------------------------------------------------------ *)
(* Location expressions                                                *)

let dw_op_reg0 = 0x50 (* DW_OP_reg0 .. DW_OP_reg31 *)
let dw_op_regx = 0x90
let dw_op_fbreg = 0x91
let dw_op_consts = 0x11
let dw_op_entry_value = 0xa3

let encode_expr buf (where : Dwarfish.location) ~usable =
  let inner = Buffer.create 8 in
  (match where with
  | Dwarfish.In_reg k ->
      if k < 32 then Buffer.add_char inner (Char.chr (dw_op_reg0 + k))
      else begin
        Buffer.add_char inner (Char.chr dw_op_regx);
        write_uleb inner k
      end
  | Dwarfish.In_slot o ->
      Buffer.add_char inner (Char.chr dw_op_fbreg);
      write_sleb inner o
  | Dwarfish.Const n ->
      Buffer.add_char inner (Char.chr dw_op_consts);
      write_sleb inner n);
  if usable then begin
    write_uleb buf (Buffer.length inner);
    Buffer.add_buffer buf inner
  end
  else begin
    (* gcc-style: the value is only recoverable as an entry-value
       expression the debugger cannot materialize at the PC. *)
    let wrapped = Buffer.create 8 in
    Buffer.add_char wrapped (Char.chr dw_op_entry_value);
    write_uleb wrapped (Buffer.length inner);
    Buffer.add_buffer wrapped inner;
    write_uleb buf (Buffer.length wrapped);
    Buffer.add_buffer buf wrapped
  end

let decode_expr c : Dwarfish.location * bool =
  let len = read_uleb c in
  let stop = c.pos + len in
  let rec operand () =
    let op = byte c in
    if op >= dw_op_reg0 && op < dw_op_reg0 + 32 then
      (Dwarfish.In_reg (op - dw_op_reg0), true)
    else if op = dw_op_regx then (Dwarfish.In_reg (read_uleb c), true)
    else if op = dw_op_fbreg then (Dwarfish.In_slot (read_sleb c), true)
    else if op = dw_op_consts then (Dwarfish.Const (read_sleb c), true)
    else if op = dw_op_entry_value then begin
      let _inner_len = read_uleb c in
      let loc, _ = operand () in
      (loc, false)
    end
    else failm "unknown DWARF expression opcode 0x%x" op
  in
  let loc, usable = operand () in
  if c.pos <> stop then failm "trailing bytes in location expression";
  (loc, usable)

(* ------------------------------------------------------------------ *)
(* .debug_loc                                                          *)

let encode_loclists buf (vars : Dwarfish.var_info list) =
  write_uleb buf (List.length vars);
  List.iter
    (fun (vi : Dwarfish.var_info) ->
      write_str buf vi.Dwarfish.vi_var.Ir.origin;
      write_str buf vi.Dwarfish.vi_var.Ir.name;
      write_uleb buf (if vi.Dwarfish.vi_is_array then 1 else 0);
      let ranges =
        List.sort
          (fun (a : Dwarfish.range) b ->
            compare (a.Dwarfish.lo, a.Dwarfish.hi) (b.Dwarfish.lo, b.Dwarfish.hi))
          vi.Dwarfish.vi_ranges
      in
      write_uleb buf (List.length ranges);
      (* Base-offset deltas, like DWARF v5 DW_LLE_offset_pair lists. *)
      let base = ref 0 in
      List.iter
        (fun (r : Dwarfish.range) ->
          if r.Dwarfish.lo < !base then failm "loclist not sorted";
          write_uleb buf (r.Dwarfish.lo - !base);
          write_uleb buf (r.Dwarfish.hi - r.Dwarfish.lo);
          encode_expr buf r.Dwarfish.where ~usable:r.Dwarfish.usable;
          base := r.Dwarfish.lo)
        ranges)
    vars

(* [List.init]'s evaluation order is unspecified; the decoder is
   stateful, so sequence reads explicitly. *)
let read_list c n f =
  let acc = ref [] in
  for _ = 1 to n do
    acc := f c :: !acc
  done;
  List.rev !acc

let decode_loclists c : Dwarfish.var_info list =
  let n = read_uleb c in
  read_list c n (fun c ->
      let origin = read_str c in
      let name = read_str c in
      let is_array = read_uleb c = 1 in
      let n_ranges = read_uleb c in
      let base = ref 0 in
      let ranges =
        read_list c n_ranges (fun c ->
            let lo = !base + read_uleb c in
            let len = read_uleb c in
            let where, usable = decode_expr c in
            base := lo;
            { Dwarfish.lo; hi = lo + len; where; usable })
      in
      {
        Dwarfish.vi_var = { Ir.origin; name };
        vi_is_array = is_array;
        vi_ranges = ranges;
      })

(* ------------------------------------------------------------------ *)
(* Container                                                           *)

let magic = "DTDW"
let version = 1

(** [encode debug] serializes the debug information to a binary blob:
    magic, version, `.debug_line` program, `.debug_loc` lists. *)
let encode (d : Dwarfish.t) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  write_uleb buf version;
  let line = Buffer.create 1024 in
  encode_line_program line d.Dwarfish.line_table;
  write_uleb buf (Buffer.length line);
  Buffer.add_buffer buf line;
  let locs = Buffer.create 1024 in
  encode_loclists locs d.Dwarfish.vars;
  write_uleb buf (Buffer.length locs);
  Buffer.add_buffer buf locs;
  Buffer.contents buf

(** [decode blob] parses an {!encode}d blob back. Raises {!Malformed}
    on anything structurally wrong. *)
let decode (blob : string) : Dwarfish.t =
  let c = { data = blob; pos = 0 } in
  if String.length blob < 4 || String.sub blob 0 4 <> magic then
    failm "bad magic";
  c.pos <- 4;
  let v = read_uleb c in
  if v <> version then failm "unsupported version %d" v;
  let line_len = read_uleb c in
  let line_end = c.pos + line_len in
  let line_table = decode_line_program c in
  if c.pos <> line_end then failm ".debug_line length mismatch";
  let locs_len = read_uleb c in
  let locs_end = c.pos + locs_len in
  let vars = decode_loclists c in
  if c.pos <> locs_end then failm ".debug_loc length mismatch";
  if c.pos <> String.length blob then failm "trailing bytes after sections";
  { Dwarfish.line_table; vars }

(** Per-section encoded sizes in bytes: (line, loc, total). *)
let section_sizes (d : Dwarfish.t) =
  let line = Buffer.create 1024 in
  encode_line_program line d.Dwarfish.line_table;
  let locs = Buffer.create 1024 in
  encode_loclists locs d.Dwarfish.vars;
  let blob = encode d in
  (Buffer.length line, Buffer.length locs, String.length blob)
