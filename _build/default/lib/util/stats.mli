(** Statistics helpers for aggregating experiment results. *)

val mean : float list -> float
(** Arithmetic mean; [nan] on the empty list. *)

val geomean : ?eps:float -> float list -> float
(** Geometric mean (the paper's per-program aggregate); zeros are clamped
    to [eps]. *)

val geo_stddev : ?eps:float -> float list -> float
(** Geometric standard deviation: [exp (stddev (log xs))]. *)

val median : float list -> float

val pct_delta : float -> float -> float
(** [pct_delta reference value] — percentage change of [value] over
    [reference], e.g. [pct_delta 0.25 0.27 = 8.0]. *)

val average_rank : 'a list list -> ('a * float) list
(** Average-rank aggregation across per-program rankings (best first);
    keys missing from a ranking are charged one past the longest
    ranking's length. Result is sorted by ascending average rank. *)
