lib/util/stats.mli:
