lib/util/rng.mli:
