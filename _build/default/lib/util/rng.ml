(** Deterministic pseudo-random number generation.

    Every source of randomness in the repository (synthetic program
    generation, fuzzing mutations, sampling jitter) flows through this
    module so that experiment outputs are bit-for-bit reproducible. The
    generator is splitmix64, which has a 64-bit state, passes BigCrush,
    and is trivially splittable. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* One splitmix64 step: advance by the golden-gamma constant and mix. *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** [bits t] returns 62 uniform pseudo-random bits as a non-negative int. *)
let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

(** [int t n] draws uniformly from [0, n). Requires [n > 0]. *)
let int t n =
  assert (n > 0);
  bits t mod n

(** [int_in t lo hi] draws uniformly from the inclusive range [lo, hi]. *)
let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

(** [bool t] draws a uniform boolean. *)
let bool t = bits t land 1 = 1

(** [chance t num den] is true with probability [num/den]. *)
let chance t num den = int t den < num

(** [float t] draws uniformly from [0, 1). *)
let float t = float_of_int (bits t) /. 4611686018427387904.0

(** [choose t arr] picks a uniform element of a non-empty array. *)
let choose t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

(** [choose_list t l] picks a uniform element of a non-empty list. *)
let choose_list t l =
  match l with
  | [] -> invalid_arg "Rng.choose_list: empty list"
  | _ -> List.nth l (int t (List.length l))

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(** [split t] derives an independent generator; [t] advances once. *)
let split t = { state = next_int64 t }
