(** Deterministic pseudo-random number generation (splitmix64).

    Every source of randomness in the repository flows through this
    module so that experiment outputs are bit-for-bit reproducible. *)

type t

val create : int -> t
(** [create seed] — a fresh generator. *)

val copy : t -> t
(** Independent copy continuing from the same state. *)

val next_int64 : t -> int64
(** One raw splitmix64 step. *)

val bits : t -> int
(** 62 uniform pseudo-random bits as a non-negative int. *)

val int : t -> int -> int
(** [int t n] draws uniformly from [0, n). Requires [n > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws uniformly from the inclusive range. *)

val bool : t -> bool

val chance : t -> int -> int -> bool
(** [chance t num den] is true with probability [num/den]. *)

val float : t -> float
(** Uniform in [0, 1). *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choose_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates permutation. *)

val split : t -> t
(** Derive an independent generator; the argument advances once. *)
