(** Small statistics helpers used when aggregating experiment results.

    The paper reports geometric means (and geometric standard deviations)
    of per-program metric scores; medians for SPEC run times. *)

let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(** Geometric mean. Zero values are clamped to [eps] so that a single
    fully-degraded program does not zero out the aggregate, mirroring how
    the paper reports scores to four decimals. *)
let geomean ?(eps = 1e-9) = function
  | [] -> nan
  | xs ->
      let log_sum =
        List.fold_left (fun acc x -> acc +. log (Float.max x eps)) 0.0 xs
      in
      exp (log_sum /. float_of_int (List.length xs))

(** Geometric standard deviation: exp of the stddev of logs. *)
let geo_stddev ?(eps = 1e-9) = function
  | [] | [ _ ] -> nan
  | xs ->
      let logs = List.map (fun x -> log (Float.max x eps)) xs in
      let m = mean logs in
      let var =
        List.fold_left (fun acc l -> acc +. ((l -. m) *. (l -. m))) 0.0 logs
        /. float_of_int (List.length logs)
      in
      exp (sqrt var)

let median = function
  | [] -> nan
  | xs ->
      let arr = Array.of_list xs in
      Array.sort compare arr;
      let n = Array.length arr in
      if n mod 2 = 1 then arr.(n / 2)
      else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.0

(** [pct_delta reference value] is the percentage change of [value] over
    [reference], e.g. [pct_delta 0.25 0.27 = 8.0]. *)
let pct_delta reference value =
  if reference = 0.0 then nan else (value -. reference) /. reference *. 100.0

(** Average rank aggregation: given per-program rankings (lists of keys,
    best first), return keys sorted by their mean rank position. Keys
    missing from a ranking are charged that ranking's length (i.e. worst
    rank + 1), matching how the paper treats no-effect passes. *)
let average_rank (rankings : 'a list list) : ('a * float) list =
  let tbl = Hashtbl.create 97 in
  let all_keys = Hashtbl.create 97 in
  List.iter
    (fun ranking ->
      List.iteri
        (fun i key ->
          Hashtbl.replace all_keys key ();
          let prev = try Hashtbl.find tbl key with Not_found -> [] in
          Hashtbl.replace tbl key (float_of_int (i + 1) :: prev))
        ranking)
    rankings;
  let n_rankings = List.length rankings in
  let scores =
    Hashtbl.fold
      (fun key () acc ->
        let positions = try Hashtbl.find tbl key with Not_found -> [] in
        let missing = n_rankings - List.length positions in
        let penalty =
          (* Charge absences as one-past-the-longest ranking. *)
          let longest =
            List.fold_left (fun m r -> max m (List.length r)) 0 rankings
          in
          float_of_int (longest + 1) *. float_of_int missing
        in
        let total = List.fold_left ( +. ) penalty positions in
        (key, total /. float_of_int (max 1 n_rankings)) :: acc)
      all_keys []
  in
  List.sort (fun (_, a) (_, b) -> compare a b) scores
