(** Plain-text table rendering for experiment output.

    The benchmark harness prints each reproduced table in a layout close
    to the paper's. Cells are strings; columns are padded to the widest
    cell; an optional title and rule lines frame the table. *)

type t = { title : string; header : string list; rows : string list list }

let make ~title ~header rows = { title; header; rows }

let f2 x = Printf.sprintf "%.2f" x
let f4 x = Printf.sprintf "%.4f" x

(** Render a float as a signed percentage with two decimals, e.g. "-4.62". *)
let pct x = Printf.sprintf "%+.2f" x

let render { title; header; rows } =
  let all = header :: rows in
  let n_cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let widths = Array.make n_cols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    all;
  let pad i cell =
    let w = widths.(i) in
    cell ^ String.make (w - String.length cell) ' '
  in
  let line row =
    row |> List.mapi pad |> String.concat "  " |> fun s -> s ^ "\n"
  in
  let rule =
    String.make
      (Array.fold_left ( + ) 0 widths + (2 * max 0 (n_cols - 1)))
      '-'
    ^ "\n"
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("== " ^ title ^ " ==\n");
  Buffer.add_string buf (line header);
  Buffer.add_string buf rule;
  List.iter (fun row -> Buffer.add_string buf (line row)) rows;
  Buffer.contents buf

let print t = print_string (render t)

(** [scatter ~title ~width ~height ~xlabel ~ylabel points] renders an
    ASCII scatter plot; each point is [(x, y, marker)] with a one-char
    marker. Later points overwrite earlier ones on collision. *)
let scatter ~title ~width ~height ~xlabel ~ylabel points =
  match points with
  | [] -> "== " ^ title ^ " == (no points)\n"
  | _ ->
      let xs = List.map (fun (x, _, _) -> x) points in
      let ys = List.map (fun (_, y, _) -> y) points in
      let xmin = List.fold_left min infinity xs
      and xmax = List.fold_left max neg_infinity xs in
      let ymin = List.fold_left min infinity ys
      and ymax = List.fold_left max neg_infinity ys in
      let xspan = if xmax > xmin then xmax -. xmin else 1.0 in
      let yspan = if ymax > ymin then ymax -. ymin else 1.0 in
      let grid = Array.make_matrix height width ' ' in
      List.iter
        (fun (x, y, m) ->
          let col =
            int_of_float ((x -. xmin) /. xspan *. float_of_int (width - 1))
          in
          let row =
            height - 1
            - int_of_float ((y -. ymin) /. yspan *. float_of_int (height - 1))
          in
          grid.(max 0 (min (height - 1) row)).(max 0 (min (width - 1) col)) <- m)
        points;
      let buf = Buffer.create ((width + 8) * (height + 4)) in
      Buffer.add_string buf ("== " ^ title ^ " ==\n");
      Buffer.add_string buf
        (Printf.sprintf "%s: %.3f .. %.3f (vertical)\n" ylabel ymin ymax);
      Array.iter
        (fun row ->
          Buffer.add_string buf "  |";
          Array.iter (Buffer.add_char buf) row;
          Buffer.add_char buf '\n')
        grid;
      Buffer.add_string buf ("  +" ^ String.make width '-' ^ "\n");
      Buffer.add_string buf
        (Printf.sprintf "   %s: %.3f .. %.3f (horizontal)\n" xlabel xmin xmax);
      Buffer.contents buf
