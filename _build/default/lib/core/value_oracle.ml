(** Dynamic value-soundness oracle: everything the debugger displays
    must be the truth.

    The paper's availability metrics count *whether* a variable is
    visible; this oracle checks *what* the debugger would print. It runs
    the reference AST interpreter with a statement observer (recording
    every visible local at the first execution of each source line) and
    in parallel replays the binary under the debugger protocol
    (recording every debug-info-materializable variable at the first
    hit of each line), then compares the two views variable by
    variable.

    At O0 the views must agree exactly — statements execute in source
    order and the stop lands before the statement's first instruction,
    so a disagreement means the debug information lies (a stale
    location-list entry, a mis-scoped slot, a wrong line attribution).
    The test suite enforces an empty mismatch list for every suite
    program and for random synthetic programs. At optimized levels the
    comparison is reported but not a soundness bound: code motion
    legitimately makes the debugger show a value from before/after the
    interpreter's observation point (this is exactly the "wrong values"
    phenomenon the authors' companion work studies in production
    compilers). *)

type oval = Vint of int | Varr of int list

let oval_to_string = function
  | Vint n -> string_of_int n
  | Varr l -> "{" ^ String.concat ", " (List.map string_of_int l) ^ "}"

type mismatch = {
  mm_line : int;
  mm_func : string;
  mm_var : string;
  mm_debugger : oval;
  mm_interp : oval;
}

type report = {
  rp_lines : int;  (** lines observed by both sides *)
  rp_values : int;  (** variable values compared *)
  rp_mismatches : mismatch list;
}

(* ------------------------------------------------------------------ *)
(* Interpreter side                                                    *)

(* First observation of each line: enclosing function and a deep copy
   of every visible local (cells mutate; snapshot immediately). *)
let interp_snapshots (ast : Minic.Ast.program) ~entry ~input =
  let seen : (int, string * (string, oval) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 64
  in
  let observe ~fname ~line visible =
    if not (Hashtbl.mem seen line) then begin
      let env = Hashtbl.create 8 in
      List.iter
        (fun (name, cell) ->
          Hashtbl.replace env name
            (match cell with
            | Minic.Interp.Scalar r -> Vint !r
            | Minic.Interp.Array a -> Varr (Array.to_list a)))
        visible;
      Hashtbl.replace seen line (fname, env)
    end
  in
  (try ignore (Minic.Interp.run ~observer:observe ast ~entry ~input)
   with Minic.Interp.Step_limit -> ());
  seen

(* ------------------------------------------------------------------ *)
(* Debugger side                                                       *)

let materialize_oval (st : Vm.state) (vi_is_array : bool)
    (where : Dwarfish.location) : oval option =
  match st.Vm.frames with
  | [] -> None
  | f :: _ -> (
      match where with
      | Dwarfish.Const n -> Some (Vint n)
      | Dwarfish.In_reg k ->
          if k >= 0 && k < Array.length st.Vm.pregs then
            Some (Vint st.Vm.pregs.(k))
          else None
      | Dwarfish.In_slot o ->
          if o < 0 || o >= Array.length f.Vm.fr_mem then None
          else if vi_is_array then
            let size =
              List.find_map
                (fun (_, off, size) -> if off = o then Some size else None)
                f.Vm.fr_fi.Emit.fi_slot_offset
            in
            Option.map
              (fun size ->
                Varr
                  (List.init
                     (min size (Array.length f.Vm.fr_mem - o))
                     (fun i -> f.Vm.fr_mem.(o + i))))
              size
          else Some (Vint f.Vm.fr_mem.(o)))

(* Replay the binary, stopping (conceptually) at the first hit of every
   line-table line, and materialize what the debug info exposes. *)
let debugger_snapshots (bin : Emit.binary) ~entry ~input =
  let line_at = Hashtbl.create 64 in
  List.iter
    (fun (e : Dwarfish.line_entry) ->
      if not (Hashtbl.mem line_at e.Dwarfish.addr) then
        Hashtbl.replace line_at e.Dwarfish.addr e.Dwarfish.line)
    bin.Emit.debug.Dwarfish.line_table;
  let is_array =
    let t = Hashtbl.create 16 in
    List.iter
      (fun (vi : Dwarfish.var_info) ->
        if vi.Dwarfish.vi_is_array then
          Hashtbl.replace t vi.Dwarfish.vi_var ())
      bin.Emit.debug.Dwarfish.vars;
    fun v -> Hashtbl.mem t v
  in
  let seen : (int, string * (string, oval) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 64
  in
  let globals = Hashtbl.create 16 in
  List.iter
    (fun (g : Ir.global_def) ->
      Hashtbl.replace globals g.Ir.g_name (Array.make g.Ir.g_size g.Ir.g_init))
    bin.Emit.bin_globals;
  let st =
    {
      Vm.bin;
      pregs = Array.make (Mach.num_regs + 1) 0;
      frames = [];
      globals;
      input = Array.of_list input;
      input_pos = 0;
      out_rev = [];
      cost = 0;
      icount = 0;
      pc = 0;
      last_writes = [];
      last_was_load = false;
      edges = Hashtbl.create 16;
      bp_hits_rev = [];
      halted = false;
    }
  in
  let fi =
    match Hashtbl.find_opt bin.Emit.fn_by_name entry with
    | Some idx -> bin.Emit.funcs.(idx)
    | None -> raise (Vm.Runtime_error ("no entry function " ^ entry))
  in
  Vm.enter_function st fi [] ~ret_pc:(-1) ~ret_dst:None;
  let observe () =
    match Hashtbl.find_opt line_at st.Vm.pc with
    | Some line when not (Hashtbl.mem seen line) -> (
        match st.Vm.frames with
        | [] -> ()
        | f :: _ ->
            let fn = f.Vm.fr_fi.Emit.fi_name in
            let env = Hashtbl.create 8 in
            List.iter
              (fun ((v : Ir.var_id), where) ->
                if v.Ir.origin = fn then
                  match materialize_oval st (is_array v) where with
                  | Some value -> Hashtbl.replace env v.Ir.name value
                  | None -> ())
              (Dwarfish.available_at bin.Emit.debug st.Vm.pc);
            Hashtbl.replace seen line (fn, env))
    | _ -> ()
  in
  (try
     while not st.Vm.halted do
       observe ();
       try Vm.step st Vm.default_opts None with Exit -> ()
     done
   with Vm.Budget_exhausted -> ());
  seen

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)

(** [check ast ~config ~roots ~entry ~input] compiles and compares the
    two views. Function-header lines are excluded: their addresses are
    the prologue, which the debugger protocol skips (gdb's break-after-
    prologue), so values there are not yet meaningful. *)
let check (ast : Minic.Ast.program) ~(config : Config.t) ~roots ~entry ~input
    : report =
  let bin = Toolchain.compile ast ~config ~roots in
  let header_lines =
    List.map (fun (f : Minic.Ast.func) -> f.Minic.Ast.fline) ast.Minic.Ast.funcs
  in
  let interp = interp_snapshots ast ~entry ~input in
  let dbg = debugger_snapshots bin ~entry ~input in
  let lines = ref 0 and values = ref 0 in
  let mismatches = ref [] in
  Hashtbl.iter
    (fun line (dbg_fn, dbg_env) ->
      if not (List.mem line header_lines) then
        match Hashtbl.find_opt interp line with
        | Some (int_fn, int_env) when int_fn = dbg_fn ->
            incr lines;
            Hashtbl.iter
              (fun name dval ->
                match Hashtbl.find_opt int_env name with
                | Some ival ->
                    incr values;
                    if ival <> dval then
                      mismatches :=
                        {
                          mm_line = line;
                          mm_func = dbg_fn;
                          mm_var = name;
                          mm_debugger = dval;
                          mm_interp = ival;
                        }
                        :: !mismatches
                | None -> ())
              dbg_env
        | _ -> ())
    dbg;
  {
    rp_lines = !lines;
    rp_values = !values;
    rp_mismatches =
      List.sort
        (fun a b -> compare (a.mm_line, a.mm_var) (b.mm_line, b.mm_var))
        !mismatches;
  }

let mismatch_to_string m =
  Printf.sprintf "line %d (%s): %s shows %s, truth is %s" m.mm_line m.mm_func
    m.mm_var
    (oval_to_string m.mm_debugger)
    (oval_to_string m.mm_interp)

let report_to_string r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "value oracle: %d line(s), %d value(s) compared, %d mismatch(es)\n"
       r.rp_lines r.rp_values
       (List.length r.rp_mismatches));
  List.iter
    (fun m -> Buffer.add_string buf ("  " ^ mismatch_to_string m ^ "\n"))
    r.rp_mismatches;
  Buffer.contents buf
