(** Pareto-front computation over (debuggability, speedup) points
    (Figure 2). *)

type point = { pt_name : string; pt_debug : float; pt_speedup : float }

val dominates : point -> point -> bool
(** [dominates a b]: at least as good on both axes, strictly better on
    one. *)

val front : point list -> (point * bool) list
(** Each point paired with its Pareto-optimality. *)

val optimal : point list -> point list
(** Pareto-optimal points, sorted by increasing debuggability. *)

val of_config_point : Tuning.config_point -> point
