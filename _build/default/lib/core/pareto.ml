(** Pareto-front computation over (debuggability, speedup) points
    (Figure 2): a configuration is Pareto-optimal when no other tested
    configuration is at least as good on both axes and strictly better on
    one. *)

type point = { pt_name : string; pt_debug : float; pt_speedup : float }

let dominates a b =
  a.pt_debug >= b.pt_debug && a.pt_speedup >= b.pt_speedup
  && (a.pt_debug > b.pt_debug || a.pt_speedup > b.pt_speedup)

(** [front points] — each point paired with its Pareto-optimality. *)
let front (points : point list) : (point * bool) list =
  List.map
    (fun p -> (p, not (List.exists (fun q -> dominates q p) points)))
    points

(** Pareto-optimal points sorted by increasing debuggability. *)
let optimal points =
  front points
  |> List.filter_map (fun (p, opt) -> if opt then Some p else None)
  |> List.sort (fun a b -> compare a.pt_debug b.pt_debug)

let of_config_point (cp : Tuning.config_point) =
  {
    pt_name = Config.name cp.Tuning.cp_config;
    pt_debug = cp.Tuning.cp_debug;
    pt_speedup = cp.Tuning.cp_speedup;
  }
