(** Compiler configurations: a compiler (pipeline family), an
    optimization level, and a set of disabled pass instances — the
    paper's [Ox-dy] configurations are values of this type. *)

type compiler = Gcc | Clang

type level = O0 | Og | O1 | O2 | O3

type t = {
  compiler : compiler;
  level : level;
  disabled : string list;
      (** pass names to disable; a name disables every instance of the
          pass in the pipeline (paper footnote 2) *)
}

let compiler_name = function Gcc -> "gcc" | Clang -> "clang"

let level_name = function
  | O0 -> "O0"
  | Og -> "Og"
  | O1 -> "O1"
  | O2 -> "O2"
  | O3 -> "O3"

let name c =
  let base = Printf.sprintf "%s-%s" (compiler_name c.compiler) (level_name c.level) in
  match c.disabled with
  | [] -> base
  | ds -> Printf.sprintf "%s-d%d" base (List.length ds)

let make ?(disabled = []) compiler level = { compiler; level; disabled }

(** Standard levels of a compiler (clang has no Og, as in the paper). *)
let standard_levels = function
  | Gcc -> [ Og; O1; O2; O3 ]
  | Clang -> [ O1; O2; O3 ]

let enabled c pass_name = not (List.mem pass_name c.disabled)
