(** Compiler configurations: a pipeline family, an optimization level,
    and a set of disabled pass instances — the paper's [Ox-dy]
    configurations are values of this type. *)

type compiler = Gcc | Clang

type level = O0 | Og | O1 | O2 | O3

type t = {
  compiler : compiler;
  level : level;
  disabled : string list;
      (** pass names to disable; a name disables every instance of the
          pass in the pipeline (paper footnote 2) *)
}

val compiler_name : compiler -> string

val level_name : level -> string

val name : t -> string
(** E.g. ["gcc-O2"] or ["clang-O1-d5"]. *)

val make : ?disabled:string list -> compiler -> level -> t

val standard_levels : compiler -> level list
(** [Og; O1; O2; O3] for gcc, [O1; O2; O3] for clang (which has no Og,
    as in the paper). *)

val enabled : t -> string -> bool
(** Is a pass instance enabled under this configuration? *)
