lib/core/autofdo.ml: Array Buffer Config Dwarfish Emit Hashtbl List Minic Option Printf String Toolchain Vm
