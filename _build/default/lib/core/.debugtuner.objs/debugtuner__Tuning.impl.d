lib/core/tuning.ml: Config Evaluation List Ranking Suite_types Toolchain Util Vm
