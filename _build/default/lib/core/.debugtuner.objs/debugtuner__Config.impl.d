lib/core/config.ml: List Printf
