lib/core/extensions.ml: Autofdo Config Evaluation List Minic Ranking Suite_types Toolchain Tuning Util Vm
