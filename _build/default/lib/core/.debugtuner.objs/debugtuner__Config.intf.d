lib/core/config.mli:
