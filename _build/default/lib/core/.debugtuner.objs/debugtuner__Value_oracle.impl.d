lib/core/value_oracle.ml: Array Buffer Config Dwarfish Emit Hashtbl Ir List Mach Minic Option Printf String Toolchain Vm
