lib/core/pareto.mli: Tuning
