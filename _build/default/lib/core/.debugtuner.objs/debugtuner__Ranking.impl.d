lib/core/ranking.ml: Config Emit Evaluation List Metrics Toolchain Util
