lib/core/evaluation.ml: Cmin Config Debugger Emit Fuzzer Hashtbl List Metrics Minic Suite_types Toolchain Trace_prune
