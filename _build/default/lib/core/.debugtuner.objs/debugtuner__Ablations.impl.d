lib/core/ablations.ml: Config Debugger Evaluation Hashtbl List Metrics Printf Ranking Suite_types Toolchain Util
