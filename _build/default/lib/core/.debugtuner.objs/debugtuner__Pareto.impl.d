lib/core/pareto.ml: Config List Tuning
