(** Structural verification of the debug information in an emitted
    binary — the [llvm-dwarfdump --verify] analog the paper's
    methodology depends on (Section II-B vets its toolchain output
    before measuring it).

    Every check is purely structural: it cross-references the DWARF-like
    sections ([Dwarfish.t]) against the binary's ground truth (the code
    array, the per-address line attribution the VM uses, and the
    function table). A healthy compilation must produce zero
    diagnostics; the test suite injects corruptions and checks each one
    is caught by exactly the right class. *)

type diag_kind =
  | Line_addr_oob  (** line-table entry outside the code section *)
  | Line_table_unsorted  (** addresses not strictly increasing *)
  | Line_mismatch  (** line table disagrees with the binary's own attribution *)
  | Range_inverted  (** location range with [hi <= lo] *)
  | Range_oob  (** location range outside the code section *)
  | Range_crosses_function  (** range spans two functions *)
  | Bad_register  (** location names a nonexistent register *)
  | Bad_slot  (** slot offset outside the enclosing function's frame *)
  | Overlap_conflict
      (** two usable ranges of one variable overlap with different
          locations — the debugger could not pick one *)
  | Func_bounds  (** function table and address map disagree *)

type diag = { kind : diag_kind; message : string }

let kind_to_string = function
  | Line_addr_oob -> "line-addr-oob"
  | Line_table_unsorted -> "line-table-unsorted"
  | Line_mismatch -> "line-mismatch"
  | Range_inverted -> "range-inverted"
  | Range_oob -> "range-oob"
  | Range_crosses_function -> "range-crosses-function"
  | Bad_register -> "bad-register"
  | Bad_slot -> "bad-slot"
  | Overlap_conflict -> "overlap-conflict"
  | Func_bounds -> "func-bounds"

let diag_to_string d =
  Printf.sprintf "[%s] %s" (kind_to_string d.kind) d.message

(* ------------------------------------------------------------------ *)

let check_line_table (bin : Emit.binary) push =
  let len = Array.length bin.Emit.code in
  let prev = ref (-1) in
  List.iter
    (fun (e : Dwarfish.line_entry) ->
      if e.Dwarfish.addr < 0 || e.Dwarfish.addr >= len then
        push Line_addr_oob
          (Printf.sprintf "line %d at address %d, code section is [0, %d)"
             e.Dwarfish.line e.Dwarfish.addr len)
      else begin
        if e.Dwarfish.addr <= !prev then
          push Line_table_unsorted
            (Printf.sprintf "address %d follows %d" e.Dwarfish.addr !prev);
        match bin.Emit.line_of.(e.Dwarfish.addr) with
        | Some l when l = e.Dwarfish.line -> ()
        | Some l ->
            push Line_mismatch
              (Printf.sprintf
                 "line table says line %d at address %d, binary says %d"
                 e.Dwarfish.line e.Dwarfish.addr l)
        | None ->
            push Line_mismatch
              (Printf.sprintf
                 "line table says line %d at address %d, binary has no line"
                 e.Dwarfish.line e.Dwarfish.addr)
      end;
      prev := max !prev e.Dwarfish.addr)
    bin.Emit.debug.Dwarfish.line_table

let frame_words_at (bin : Emit.binary) addr =
  let fi = bin.Emit.fn_of_addr.(addr) in
  bin.Emit.funcs.(fi).Emit.fi_frame_words

let check_ranges (bin : Emit.binary) push =
  let len = Array.length bin.Emit.code in
  List.iter
    (fun (vi : Dwarfish.var_info) ->
      let vname = Ir.var_to_string vi.Dwarfish.vi_var in
      List.iter
        (fun (r : Dwarfish.range) ->
          if r.Dwarfish.hi <= r.Dwarfish.lo then
            push Range_inverted
              (Printf.sprintf "%s has range [%d, %d)" vname r.Dwarfish.lo
                 r.Dwarfish.hi)
          else if r.Dwarfish.lo < 0 || r.Dwarfish.hi > len then
            push Range_oob
              (Printf.sprintf "%s has range [%d, %d), code section is [0, %d)"
                 vname r.Dwarfish.lo r.Dwarfish.hi len)
          else begin
            (if
               bin.Emit.fn_of_addr.(r.Dwarfish.lo)
               <> bin.Emit.fn_of_addr.(r.Dwarfish.hi - 1)
             then
               push Range_crosses_function
                 (Printf.sprintf "%s has range [%d, %d) spanning two functions"
                    vname r.Dwarfish.lo r.Dwarfish.hi));
            match r.Dwarfish.where with
            | Dwarfish.In_reg k ->
                (* [num_regs] itself is the reserved scratch register:
                   never allocated, so never a valid variable home. *)
                if k < 0 || k >= Mach.num_regs then
                  push Bad_register
                    (Printf.sprintf "%s located in register r%d (of %d)" vname
                       k Mach.num_regs)
            | Dwarfish.In_slot o ->
                let fw = frame_words_at bin r.Dwarfish.lo in
                if o < 0 || o >= fw then
                  push Bad_slot
                    (Printf.sprintf
                       "%s located in frame slot %d, frame has %d words" vname
                       o fw)
            | Dwarfish.Const _ -> ()
          end)
        vi.Dwarfish.vi_ranges)
    bin.Emit.debug.Dwarfish.vars

(* Overlapping usable ranges of one variable must agree on the
   location: at any PC the debugger materializes exactly one home. *)
let check_overlaps (bin : Emit.binary) push =
  List.iter
    (fun (vi : Dwarfish.var_info) ->
      let usable =
        List.filter
          (fun (r : Dwarfish.range) ->
            r.Dwarfish.usable && r.Dwarfish.lo < r.Dwarfish.hi)
          vi.Dwarfish.vi_ranges
      in
      let sorted =
        List.sort
          (fun (a : Dwarfish.range) b -> compare a.Dwarfish.lo b.Dwarfish.lo)
          usable
      in
      let rec scan = function
        | (a : Dwarfish.range) :: (b :: _ as rest) ->
            if b.Dwarfish.lo < a.Dwarfish.hi && a.Dwarfish.where <> b.Dwarfish.where
            then
              push Overlap_conflict
                (Printf.sprintf
                   "%s is in %s over [%d, %d) and in %s over [%d, %d)"
                   (Ir.var_to_string vi.Dwarfish.vi_var)
                   (Dwarfish.location_to_string a.Dwarfish.where)
                   a.Dwarfish.lo a.Dwarfish.hi
                   (Dwarfish.location_to_string b.Dwarfish.where)
                   b.Dwarfish.lo b.Dwarfish.hi);
            scan rest
        | _ -> ()
      in
      scan sorted)
    bin.Emit.debug.Dwarfish.vars

let check_functions (bin : Emit.binary) push =
  let len = Array.length bin.Emit.code in
  Array.iter
    (fun (fi : Emit.func_info) ->
      if fi.Emit.fi_entry > fi.Emit.fi_end || fi.Emit.fi_end > len then
        push Func_bounds
          (Printf.sprintf "%s claims [%d, %d), code section is [0, %d)"
             fi.Emit.fi_name fi.Emit.fi_entry fi.Emit.fi_end len)
      else
        for a = fi.Emit.fi_entry to fi.Emit.fi_end - 1 do
          if bin.Emit.fn_of_addr.(a) <> fi.Emit.fi_index then
            push Func_bounds
              (Printf.sprintf "address %d inside %s maps to function #%d" a
                 fi.Emit.fi_name
                 bin.Emit.fn_of_addr.(a))
        done)
    bin.Emit.funcs

let verify (bin : Emit.binary) : diag list =
  let diags = ref [] in
  let push kind fmt = diags := { kind; message = fmt } :: !diags in
  check_line_table bin push;
  check_ranges bin push;
  check_overlaps bin push;
  check_functions bin push;
  List.rev !diags

let report diags =
  match diags with
  | [] -> "debug info verification: clean\n"
  | _ ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf
        (Printf.sprintf "debug info verification: %d error(s)\n"
           (List.length diags));
      List.iter
        (fun d -> Buffer.add_string buf ("  " ^ diag_to_string d ^ "\n"))
        diags;
      Buffer.contents buf
