(** Instruction selection: out-of-SSA conversion, register allocation and
    one-to-one translation of IR instructions into machine instructions.

    Out-of-SSA first splits critical edges (avoiding the lost-copy
    problem), then lowers each phi into copies at the end of its
    predecessors; parallel copies that read their own destinations are
    sequentialized through fresh temporaries (the swap problem). Copies
    whose source and destination were coalesced to the same location are
    deleted during translation. *)

(* ------------------------------------------------------------------ *)
(* Out-of-SSA                                                          *)

let split_critical_edges (fn : Ir.fn) =
  Ir.recompute_preds fn;
  let edges = ref [] in
  Ir.iter_blocks fn (fun b ->
      let ss = Ir.succs b.Ir.term in
      if List.length ss > 1 then
        List.iter
          (fun s ->
            let sb = Ir.block fn s in
            if List.length sb.Ir.preds > 1 && sb.Ir.phis <> [] then
              edges := (b.Ir.b_label, s) :: !edges)
          ss);
  List.iter
    (fun (p, s) ->
      let mid = Ir.new_block fn in
      mid.Ir.term <- Ir.Br s;
      let pb = Ir.block fn p in
      (* Redirect only the (p, s) edge. *)
      (pb.Ir.term <-
         (match pb.Ir.term with
         | Ir.Cbr (c, l1, l2) ->
             let l1 = if l1 = s then mid.Ir.b_label else l1 in
             let l2 = if l2 = s then mid.Ir.b_label else l2 in
             Ir.Cbr (c, l1, l2)
         | t -> t));
      (* Retarget the phi arguments of s coming from p. *)
      List.iter
        (fun (phi : Ir.phi) ->
          phi.Ir.p_args <-
            List.map
              (fun (l, o) -> if l = p then (mid.Ir.b_label, o) else (l, o))
              phi.Ir.p_args)
        (Ir.block fn s).Ir.phis)
    !edges;
  Ir.recompute_preds fn

(** Lower phis to copies in predecessors. After this no block has phis
    and registers may be defined more than once. *)
let out_of_ssa (fn : Ir.fn) =
  split_critical_edges fn;
  Ir.iter_blocks fn (fun b ->
      if b.Ir.phis <> [] then begin
        let dsts = List.map (fun (p : Ir.phi) -> p.Ir.p_dst) b.Ir.phis in
        List.iter
          (fun pred ->
            let moves =
              List.filter_map
                (fun (p : Ir.phi) ->
                  match List.assoc_opt pred p.Ir.p_args with
                  | Some o -> Some (p.Ir.p_dst, o)
                  | None -> None)
                b.Ir.phis
            in
            (* A copy is "hazardous" when some source is also one of the
               destinations being written on this edge. *)
            let hazardous =
              List.exists
                (fun (_, o) ->
                  match o with Ir.Reg r -> List.mem r dsts | Ir.Imm _ -> false)
                moves
            in
            let copy_instrs =
              if hazardous then
                let temped =
                  List.map (fun (d, o) -> (d, o, Ir.fresh_reg fn)) moves
                in
                List.map
                  (fun (_, o, t) -> { Ir.ik = Ir.Mov (t, o); line = None })
                  temped
                @ List.map
                    (fun (d, _, t) ->
                      { Ir.ik = Ir.Mov (d, Ir.Reg t); line = None })
                    temped
              else
                List.filter_map
                  (fun (d, o) ->
                    if o = Ir.Reg d then None
                    else Some { Ir.ik = Ir.Mov (d, o); line = None })
                  moves
            in
            let pb = Ir.block fn pred in
            pb.Ir.instrs <- pb.Ir.instrs @ copy_instrs)
          b.Ir.preds;
        b.Ir.phis <- []
      end)

(* ------------------------------------------------------------------ *)
(* Translation                                                         *)

let translate_fn (fn : Ir.fn) (opts : Mach.opts) : Mach.mfn =
  Ir.prune_unreachable fn;
  out_of_ssa fn;
  let alloc =
    Regalloc.allocate fn ~coalesce:opts.Mach.coalesce
      ~share_spill_slots:opts.Mach.share_spill_slots
  in
  let loc r =
    match Hashtbl.find_opt alloc.Regalloc.loc_of r with
    | Some l -> l
    | None ->
        (* A register that never appears in allocatable code (e.g. only
           referenced from a debug binding whose definition was removed):
           the scratch register, which the allocator never hands out. *)
        Mach.Preg Mach.num_regs
  in
  let mval = function Ir.Reg r -> Mach.Loc (loc r) | Ir.Imm n -> Mach.Cst n in
  let maddr (a : Ir.addr) : Mach.maddr =
    let mbase =
      match a.Ir.base with
      | Ir.Slot s -> Mach.Mframe s
      | Ir.Global g -> Mach.Mglobal g
    in
    { Mach.mbase; mindex = mval a.Ir.index }
  in
  let mkind (ik : Ir.ikind) : Mach.mkind option =
    match ik with
    | Ir.Bin (op, d, a, b) -> Some (Mach.Mbin (op, loc d, mval a, mval b))
    | Ir.Un (op, d, a) -> Some (Mach.Mun (op, loc d, mval a))
    | Ir.Mov (d, o) ->
        let v = mval o in
        if v = Mach.Loc (loc d) then None (* coalesced copy *)
        else Some (Mach.Mmov (loc d, v))
    | Ir.Load (d, a) -> Some (Mach.Mload (loc d, maddr a))
    | Ir.Store (a, v) -> Some (Mach.Mstore (maddr a, mval v))
    | Ir.Call (d, f, args) ->
        Some (Mach.Mcall (Option.map loc d, f, List.map mval args))
    | Ir.Input d -> Some (Mach.Minput (loc d))
    | Ir.Eof d -> Some (Mach.Meof (loc d))
    | Ir.Output v -> Some (Mach.Moutput (mval v))
    | Ir.Select (d, c, a, b) ->
        Some (Mach.Mselect (loc d, mval c, mval a, mval b))
    | Ir.Vec (op, lanes) ->
        Some
          (Mach.Mvec
             (op, Array.map (fun (d, a, b) -> (loc d, mval a, mval b)) lanes))
    | Ir.Dbg (v, Some (Ir.Reg r)) -> Some (Mach.Mdbg (v, Some (Mach.Dloc (loc r))))
    | Ir.Dbg (v, Some (Ir.Imm n)) -> Some (Mach.Mdbg (v, Some (Mach.Dconst n)))
    | Ir.Dbg (v, None) -> Some (Mach.Mdbg (v, None))
  in
  let mterm = function
    | Ir.Ret o -> Mach.Mret (Option.map mval o)
    | Ir.Br l -> Mach.Mjmp l
    | Ir.Cbr (c, l1, l2) -> Mach.Mcbr (mval c, l1, l2)
  in
  let blocks = Hashtbl.create 16 in
  Ir.iter_blocks fn (fun b ->
      let mins =
        List.filter_map
          (fun (i : Ir.instr) ->
            Option.map
              (fun mk -> { Mach.mk; mline = i.Ir.line })
              (mkind i.Ir.ik))
          b.Ir.instrs
      in
      Hashtbl.replace blocks b.Ir.b_label
        {
          Mach.mb_label = b.Ir.b_label;
          mins;
          mterm = mterm b.Ir.term;
          mterm_line = b.Ir.term_line;
          mb_prob = b.Ir.prob;
          mb_freq = b.Ir.freq;
        });
  {
    Mach.mf_name = fn.Ir.f_name;
    mf_line = fn.Ir.f_line;
    mf_blocks = blocks;
    mf_entry = fn.Ir.entry;
    mf_layout = fn.Ir.layout;
    mf_param_locs = List.map (fun (r, _) -> loc r) fn.Ir.f_params;
    mf_frame =
      List.map
        (fun (s : Ir.slot) ->
          {
            Mach.fs_id = s.Ir.s_id;
            fs_size = s.Ir.s_size;
            fs_var = s.Ir.s_var;
            fs_array = s.Ir.s_array;
          })
        fn.Ir.f_slots;
    mf_spill_words = alloc.Regalloc.spill_words;
    mf_shrink_wrapped = false;
  }
