(** Disassembly listing of an emitted binary — the [objdump -dl]
    analog: one row per address with the instruction text, the source
    line the line table attributes to it (the [-l] interleaving), and
    function headers. The listing makes the debug-info losses visible
    at a glance: optimized code shows long runs of line-less
    instructions exactly where passes stripped or merged them. *)

let eop_to_string (bin : Emit.binary) = function
  | Emit.Eins mk -> Mach.mkind_to_string mk
  | Emit.Ejmp t -> Printf.sprintf "jmp %d" t
  | Emit.Ecbr (c, t1, t2) ->
      Printf.sprintf "cbr %s, %d, %d" (Mach.mval_to_string c) t1 t2
  | Emit.Eret None -> "ret"
  | Emit.Eret (Some v) ->
      ignore bin;
      Printf.sprintf "ret %s" (Mach.mval_to_string v)

(** [disassemble ?func bin] renders the whole binary (or just [func])
    as an address-ordered listing. *)
let disassemble ?func (bin : Emit.binary) =
  let buf = Buffer.create 4096 in
  let with_lines = ref 0 in
  let total = ref 0 in
  Array.iter
    (fun (fi : Emit.func_info) ->
      if func = None || func = Some fi.Emit.fi_name then begin
        Buffer.add_string buf
          (Printf.sprintf "%s:    ; [%d, %d), frame=%d word(s)\n"
             fi.Emit.fi_name fi.Emit.fi_entry fi.Emit.fi_end
             fi.Emit.fi_frame_words);
        for a = fi.Emit.fi_entry to fi.Emit.fi_end - 1 do
          incr total;
          let line =
            match bin.Emit.line_of.(a) with
            | Some l ->
                incr with_lines;
                Printf.sprintf "  ; line %d" l
            | None -> ""
          in
          Buffer.add_string buf
            (Printf.sprintf "  %5d:  %-40s%s\n" a
               (eop_to_string bin bin.Emit.code.(a))
               line)
        done;
        Buffer.add_char buf '\n'
      end)
    bin.Emit.funcs;
  if func <> None && !total = 0 then
    Buffer.add_string buf "(no such function)\n";
  Buffer.add_string buf
    (Printf.sprintf "%d instruction(s), %d with line info (%.1f%%)\n" !total
       !with_lines
       (if !total = 0 then 0.0
        else 100.0 *. float_of_int !with_lines /. float_of_int !total));
  Buffer.contents buf
