lib/backend/mach.ml: Array Hashtbl Ir List Printf String
