lib/backend/isel.ml: Array Hashtbl Ir List Mach Option Regalloc
