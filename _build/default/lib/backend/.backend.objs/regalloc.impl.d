lib/backend/regalloc.ml: Array Hashtbl Ir List Liveness Mach
