lib/backend/debug_verify.mli: Emit
