lib/backend/mach_passes.ml: Array Hashtbl List Mach Option
