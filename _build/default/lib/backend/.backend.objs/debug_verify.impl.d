lib/backend/debug_verify.ml: Array Buffer Dwarfish Emit Ir List Mach Printf
