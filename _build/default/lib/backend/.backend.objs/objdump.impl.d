lib/backend/objdump.ml: Array Buffer Emit Mach Printf
