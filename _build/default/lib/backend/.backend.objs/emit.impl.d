lib/backend/emit.ml: Array Buffer Digest Dwarfish Hashtbl Ir List Mach Map Marshal Option Printf String
