lib/backend/dwarfdump.ml: Array Buffer Dwarfish Emit Hashtbl Ir List Option Printf
