(** Structural verification of the debug information in an emitted
    binary — the [llvm-dwarfdump --verify] analog. A healthy
    compilation must produce zero diagnostics. *)

type diag_kind =
  | Line_addr_oob  (** line-table entry outside the code section *)
  | Line_table_unsorted  (** addresses not strictly increasing *)
  | Line_mismatch  (** line table disagrees with the binary's own attribution *)
  | Range_inverted  (** location range with [hi <= lo] *)
  | Range_oob  (** location range outside the code section *)
  | Range_crosses_function  (** range spans two functions *)
  | Bad_register  (** location names a nonexistent register *)
  | Bad_slot  (** slot offset outside the enclosing function's frame *)
  | Overlap_conflict
      (** two usable ranges of one variable overlap with different
          locations *)
  | Func_bounds  (** function table and address map disagree *)

type diag = { kind : diag_kind; message : string }

val kind_to_string : diag_kind -> string
val diag_to_string : diag -> string

val verify : Emit.binary -> diag list
(** Run every check; returns the diagnostics in section order (line
    table, location lists, overlaps, function table). *)

val report : diag list -> string
(** Human-readable multi-line report. *)
