(** Register allocation over precise per-block live segments.

    Each virtual register's lifetime is a set of half-open position
    segments (one per block where it is live), computed from dataflow
    liveness — not a single hull, which would make large post-inlining
    functions spill catastrophically from false interference. Allocation
    is greedy in order of first definition: pick the lowest physical
    register whose already-assigned segments don't overlap, else a spill
    slot ([Pslot] frame words that instructions access directly at extra
    cost).

    Two pass toggles live here:

    - [coalesce] (gcc's [tree-coalesce-vars]): copy-related registers
      whose lifetimes only touch at the copy are merged, letting
      instruction selection delete the copy. Merged registers share one
      location, so the location-list builder later truncates the debug
      ranges of whichever variable loses the location — the mechanical
      debug cost of coalescing.
    - [share_spill_slots] (gcc's [ira-share-spill-slots]): spilled
      lifetimes that don't overlap share a frame word, shrinking the
      frame (cheaper calls) but truncating frame-location debug ranges at
      reuse. *)

type result = {
  loc_of : (Ir.reg, Mach.mloc) Hashtbl.t;
  spill_words : int;
}

type seg = { lo : int; hi : int }
(* Half-open [lo, hi). *)

let segs_overlap a b = a.lo < b.hi && b.lo < a.hi

let any_overlap (xs : seg list) (ys : seg list) =
  List.exists (fun x -> List.exists (segs_overlap x) ys) xs

(* Union-find over virtual registers, used for copy coalescing. *)
let find parent r =
  let rec go r = if parent.(r) = r then r else go parent.(r) in
  let root = go r in
  let rec compress r =
    if parent.(r) <> root then begin
      let next = parent.(r) in
      parent.(r) <- root;
      compress next
    end
  in
  compress r;
  root

let allocate (fn : Ir.fn) ~coalesce ~share_spill_slots =
  let n = fn.Ir.next_reg in
  let live = Liveness.compute fn in
  let segments : seg list array = Array.make n [] in
  let add_seg r lo hi = if hi > lo then segments.(r) <- { lo; hi } :: segments.(r) in
  let copies = ref [] in
  let pos = ref 0 in
  (* Parameters are defined by the calling convention just before the
     entry block. *)
  List.iter (fun (r, _) -> add_seg r (-1) 0) fn.Ir.f_params;
  List.iter
    (fun l ->
      let b = Ir.block fn l in
      let bstart = !pos in
      (* Per-block first definition and last use/def position of each
         register appearing here. *)
      let first_def : (Ir.reg, int) Hashtbl.t = Hashtbl.create 16 in
      let last_touch : (Ir.reg, int) Hashtbl.t = Hashtbl.create 16 in
      let touch_use r p = Hashtbl.replace last_touch r p in
      let touch_def r p =
        if not (Hashtbl.mem first_def r) then Hashtbl.replace first_def r p;
        Hashtbl.replace last_touch r p
      in
      List.iter
        (fun (i : Ir.instr) ->
          let p = !pos in
          (match i.Ir.ik with
          | Ir.Mov (d, Ir.Reg s) -> copies := (d, s, p) :: !copies
          | _ -> ());
          List.iter (fun r -> touch_use r p) (Ir.real_uses_of_ikind i.Ir.ik);
          List.iter (fun r -> touch_def r p) (Ir.def_of_ikind i.Ir.ik);
          incr pos)
        b.Ir.instrs;
      let term_pos = !pos in
      List.iter (fun r -> touch_use r term_pos) (Ir.term_uses b.Ir.term);
      incr pos;
      let bend = term_pos + 1 in
      let live_in = Liveness.live_in live l in
      let live_out = Liveness.live_out live l in
      (* Emit one segment per register touched or flowing through. *)
      let emit r =
        let starts =
          if Liveness.Reg_set.mem r live_in then bstart
          else
            match Hashtbl.find_opt first_def r with
            | Some p -> p
            | None -> bstart
        in
        let ends =
          if Liveness.Reg_set.mem r live_out then bend
          else
            match Hashtbl.find_opt last_touch r with
            | Some p -> p + 1
            | None -> bend
        in
        add_seg r starts ends
      in
      let seen = Hashtbl.create 16 in
      let see r =
        if not (Hashtbl.mem seen r) then begin
          Hashtbl.replace seen r ();
          emit r
        end
      in
      Hashtbl.iter (fun r _ -> see r) first_def;
      Hashtbl.iter (fun r _ -> see r) last_touch;
      Liveness.Reg_set.iter see live_in;
      Liveness.Reg_set.iter see live_out)
    fn.Ir.layout;
  (* Copy coalescing: merge classes whose lifetimes only touch at the
     copy itself (the source's segment ends exactly where the copy
     defines the destination). *)
  let parent = Array.init n (fun r -> r) in
  let class_segs = Array.copy segments in
  if coalesce then
    List.iter
      (fun (d, s, p) ->
        let rd = find parent d and rs = find parent s in
        if rd <> rs then begin
          (* Ignore a single-point overlap at the copy position. *)
          let trim segs =
            List.filter_map
              (fun g ->
                let g = if g.lo = p then { g with lo = p + 1 } else g in
                let g = if g.hi = p + 1 then { g with hi = p } else g in
                if g.hi > g.lo then Some g else None)
              segs
          in
          if not (any_overlap (trim class_segs.(rd)) (trim class_segs.(rs)))
          then begin
            parent.(rs) <- rd;
            class_segs.(rd) <- class_segs.(rd) @ class_segs.(rs);
            class_segs.(rs) <- []
          end
        end)
      (List.rev !copies);
  (* Greedy assignment in order of first position. *)
  let classes =
    List.init n (fun r -> r)
    |> List.filter (fun r -> find parent r = r && class_segs.(r) <> [])
    |> List.sort (fun a b ->
           let first r =
             List.fold_left (fun m g -> min m g.lo) max_int class_segs.(r)
           in
           compare (first a, a) (first b, b))
  in
  let preg_segs = Array.make Mach.num_regs [] in
  let slot_segs = ref [||] in
  let n_slots = ref 0 in
  let loc_of_class : (int, Mach.mloc) Hashtbl.t = Hashtbl.create 64 in
  (* Round-robin starting point: spreading assignments across the file
     (instead of always reusing the lowest register) leaves the post-RA
     scheduler anti-dependence freedom, as production allocators do. *)
  let hint = ref 0 in
  List.iter
    (fun cls ->
      let segs = class_segs.(cls) in
      let try_preg_from start =
        let rec go tried =
          if tried >= Mach.num_regs then None
          else
            let k = (start + tried) mod Mach.num_regs in
            if any_overlap preg_segs.(k) segs then go (tried + 1) else Some k
        in
        go 0
      in
      match try_preg_from !hint with
      | Some k ->
          hint := (k + 1) mod Mach.num_regs;
          preg_segs.(k) <- segs @ preg_segs.(k);
          Hashtbl.replace loc_of_class cls (Mach.Preg k)
      | None ->
          (* Spill. With sharing, reuse the first compatible slot. *)
          let slot =
            if share_spill_slots then begin
              let rec try_slot i =
                if i >= !n_slots then None
                else if any_overlap !slot_segs.(i) segs then try_slot (i + 1)
                else Some i
              in
              match try_slot 0 with
              | Some i -> i
              | None ->
                  let i = !n_slots in
                  incr n_slots;
                  if i >= Array.length !slot_segs then
                    slot_segs :=
                      Array.append !slot_segs
                        (Array.make (max 8 (Array.length !slot_segs)) []);
                  i
            end
            else begin
              let i = !n_slots in
              incr n_slots;
              if i >= Array.length !slot_segs then
                slot_segs :=
                  Array.append !slot_segs
                    (Array.make (max 8 (Array.length !slot_segs)) []);
              i
            end
          in
          !slot_segs.(slot) <- segs @ !slot_segs.(slot);
          Hashtbl.replace loc_of_class cls (Mach.Pslot slot))
    classes;
  let loc_of = Hashtbl.create n in
  List.init n (fun r -> r)
  |> List.iter (fun r ->
         let cls = find parent r in
         match Hashtbl.find_opt loc_of_class cls with
         | Some loc -> Hashtbl.replace loc_of r loc
         | None -> ());
  { loc_of; spill_words = !n_slots }
