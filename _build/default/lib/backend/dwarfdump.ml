(** Pretty-printer for a binary's DWARF-like sections — the [dwarfdump]
    analog. The paper's tooling shells out to [llvm-dwarfdump] /
    [readelf --debug-dump] to inspect what each optimization level left
    behind; this module renders the same three views over our emitted
    binaries: the function table, the line table (.debug_line) and the
    variable location lists (.debug_loc). *)

type section = Functions | Lines | Locs

let all_sections = [ Functions; Lines; Locs ]

let section_of_string = function
  | "functions" | "func" -> Some Functions
  | "lines" | "line" | "debug_line" -> Some Lines
  | "locs" | "loc" | "debug_loc" -> Some Locs
  | _ -> None

let func_name_at (bin : Emit.binary) addr =
  if addr < 0 || addr >= Array.length bin.Emit.fn_of_addr then "?"
  else bin.Emit.funcs.(bin.Emit.fn_of_addr.(addr)).Emit.fi_name

let dump_functions (bin : Emit.binary) buf =
  Buffer.add_string buf ".functions:\n";
  Array.iter
    (fun (fi : Emit.func_info) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-20s [%5d, %5d)  frame=%d word(s)%s\n"
           fi.Emit.fi_name fi.Emit.fi_entry fi.Emit.fi_end
           fi.Emit.fi_frame_words
           (match fi.Emit.fi_activation with
           | Some a -> Printf.sprintf "  shrink-wrapped (activates at %d)" a
           | None -> "")))
    bin.Emit.funcs;
  (* Aliases introduced by identical-code folding share an index with
     the function they were folded into. *)
  Hashtbl.iter
    (fun name idx ->
      let fi = bin.Emit.funcs.(idx) in
      if fi.Emit.fi_name <> name then
        Buffer.add_string buf
          (Printf.sprintf "  %-20s = %s (ICF alias)\n" name fi.Emit.fi_name))
    bin.Emit.fn_by_name

let dump_lines (bin : Emit.binary) buf =
  Buffer.add_string buf ".debug_line:\n";
  Buffer.add_string buf "  address  line  function\n";
  let last_fn = ref (-1) in
  List.iter
    (fun (e : Dwarfish.line_entry) ->
      let fn =
        if e.Dwarfish.addr >= 0 && e.Dwarfish.addr < Array.length bin.Emit.fn_of_addr
        then bin.Emit.fn_of_addr.(e.Dwarfish.addr)
        else -1
      in
      let name = if fn <> !last_fn then func_name_at bin e.Dwarfish.addr else "" in
      last_fn := fn;
      Buffer.add_string buf
        (Printf.sprintf "  %7d  %4d  %s\n" e.Dwarfish.addr e.Dwarfish.line name))
    bin.Emit.debug.Dwarfish.line_table

let dump_locs (bin : Emit.binary) buf =
  Buffer.add_string buf ".debug_loc:\n";
  let vars =
    List.sort
      (fun (a : Dwarfish.var_info) b ->
        compare a.Dwarfish.vi_var b.Dwarfish.vi_var)
      bin.Emit.debug.Dwarfish.vars
  in
  List.iter
    (fun (vi : Dwarfish.var_info) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s%s:\n"
           (Ir.var_to_string vi.Dwarfish.vi_var)
           (if vi.Dwarfish.vi_is_array then " (array)" else ""));
      let ranges =
        List.sort
          (fun (a : Dwarfish.range) b -> compare a.Dwarfish.lo b.Dwarfish.lo)
          vi.Dwarfish.vi_ranges
      in
      if ranges = [] then Buffer.add_string buf "    <optimized out>\n"
      else
        List.iter
          (fun (r : Dwarfish.range) ->
            Buffer.add_string buf
              (Printf.sprintf "    [%5d, %5d)  %s%s\n" r.Dwarfish.lo
                 r.Dwarfish.hi
                 (Dwarfish.location_to_string r.Dwarfish.where)
                 (if r.Dwarfish.usable then "" else "  (entry value — unusable)")))
          ranges)
    vars

(** [dump ?sections bin] renders the requested sections (all three by
    default) into one string. *)
let dump ?(sections = all_sections) (bin : Emit.binary) =
  let buf = Buffer.create 4096 in
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf '\n';
      match s with
      | Functions -> dump_functions bin buf
      | Lines -> dump_lines bin buf
      | Locs -> dump_locs bin buf)
    sections;
  Buffer.contents buf

(** One-line summary, e.g. for the CLI: code size, line-table entries,
    variables with at least one usable range. *)
let summary (bin : Emit.binary) =
  let lines = List.length bin.Emit.debug.Dwarfish.line_table in
  let vars = List.length bin.Emit.debug.Dwarfish.vars in
  let covered =
    List.length
      (List.filter
         (fun (vi : Dwarfish.var_info) ->
           List.exists (fun (r : Dwarfish.range) -> r.Dwarfish.usable)
             vi.Dwarfish.vi_ranges)
         bin.Emit.debug.Dwarfish.vars)
  in
  Printf.sprintf
    "%d instruction(s), %d function(s), %d line-table entr%s, %d/%d variable(s) located"
    (Array.length bin.Emit.code)
    (Array.length bin.Emit.funcs)
    lines
    (if lines = 1 then "y" else "ies")
    covered vars

(* ------------------------------------------------------------------ *)
(* Location statistics (the llvm-locstats analog)                      *)

type locstats = {
  ls_vars : int;  (** variables with debug info *)
  ls_avg_coverage : float;  (** mean covered fraction of the scope *)
  ls_buckets : (string * int) list;  (** histogram, 0% .. 100% *)
}

(** Coverage of one variable: addresses covered by usable ranges inside
    the enclosing function (the variable's scope approximation), over
    the function size. Inlined variables may have ranges in several
    functions; each range is clipped to its own function. *)
let var_coverage (bin : Emit.binary) (vi : Dwarfish.var_info) =
  let covered = Hashtbl.create 16 in
  let scopes = Hashtbl.create 4 in
  List.iter
    (fun (r : Dwarfish.range) ->
      if r.Dwarfish.lo < r.Dwarfish.hi && r.Dwarfish.lo >= 0
         && r.Dwarfish.hi <= Array.length bin.Emit.code
      then begin
        let fi = bin.Emit.fn_of_addr.(r.Dwarfish.lo) in
        Hashtbl.replace scopes fi ();
        if r.Dwarfish.usable then
          for a = r.Dwarfish.lo to r.Dwarfish.hi - 1 do
            Hashtbl.replace covered a ()
          done
      end)
    vi.Dwarfish.vi_ranges;
  let scope_size =
    Hashtbl.fold
      (fun fi () acc ->
        let f = bin.Emit.funcs.(fi) in
        acc + (f.Emit.fi_end - f.Emit.fi_entry))
      scopes 0
  in
  if scope_size = 0 then 0.0
  else float_of_int (Hashtbl.length covered) /. float_of_int scope_size

let bucket_names =
  [ "0%"; "1-25%"; "26-50%"; "51-75%"; "76-99%"; "100%" ]

let bucket_of coverage =
  if coverage <= 0.0 then "0%"
  else if coverage >= 1.0 then "100%"
  else if coverage <= 0.25 then "1-25%"
  else if coverage <= 0.50 then "26-50%"
  else if coverage <= 0.75 then "51-75%"
  else "76-99%"

(** [locstats bin] computes llvm-locstats-style coverage statistics:
    how much of its scope each variable's location list covers. *)
let locstats (bin : Emit.binary) : locstats =
  let vars = bin.Emit.debug.Dwarfish.vars in
  let coverages = List.map (var_coverage bin) vars in
  let counts = Hashtbl.create 8 in
  List.iter
    (fun c ->
      let b = bucket_of c in
      Hashtbl.replace counts b (1 + Option.value ~default:0 (Hashtbl.find_opt counts b)))
    coverages;
  {
    ls_vars = List.length vars;
    ls_avg_coverage =
      (match coverages with
      | [] -> 0.0
      | cs -> List.fold_left ( +. ) 0.0 cs /. float_of_int (List.length cs));
    ls_buckets =
      List.map
        (fun name ->
          (name, Option.value ~default:0 (Hashtbl.find_opt counts name)))
        bucket_names;
  }

let locstats_to_string (s : locstats) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "location statistics: %d variable(s), average scope coverage %.1f%%\n"
       s.ls_vars (100.0 *. s.ls_avg_coverage));
  List.iter
    (fun (name, n) ->
      Buffer.add_string buf (Printf.sprintf "  %-7s %4d\n" name n))
    s.ls_buckets;
  Buffer.contents buf
