(** Machine-level representation: the target of instruction selection and
    the input of the machine passes and the emitter.

    The machine has 14 physical registers (x86-64 minus stack and frame pointers) and a per-call frame of
    words holding (a) the data slots that were not promoted to registers
    (arrays, address-taken scalars) and (b) the spill area. Instructions
    may read and write frame words directly (x86-style memory operands) at
    extra cost, which is how spilling manifests in the cost model. *)

let num_regs = 14

type mloc = Preg of int | Pslot of int
(** [Pslot] indexes the spill area; data slots are addressed via
    {!maddr}. *)

type mval = Loc of mloc | Cst of int

type mbase = Mframe of int  (** data slot id *) | Mglobal of string

type maddr = { mbase : mbase; mindex : mval }

(** Debug-binding payload carried by [Mdbg]. *)
type dloc = Dloc of mloc | Dconst of int

type mkind =
  | Mbin of Ir.binop * mloc * mval * mval
  | Mun of Ir.unop * mloc * mval
  | Mmov of mloc * mval
  | Mload of mloc * maddr
  | Mstore of maddr * mval
  | Mcall of mloc option * string * mval list
  | Minput of mloc
  | Meof of mloc
  | Moutput of mval
  | Mselect of mloc * mval * mval * mval
  | Mvec of Ir.binop * (mloc * mval * mval) array
  | Mdbg of Ir.var_id * dloc option
      (** pseudo-instruction: stripped at emission into the location
          lists; has no runtime cost and no address *)

type minstr = { mutable mk : mkind; mutable mline : int option }

type mterm = Mret of mval option | Mjmp of int | Mcbr of mval * int * int

type mblock = {
  mb_label : int;
  mutable mins : minstr list;
  mutable mterm : mterm;
  mutable mterm_line : int option;
  mutable mb_prob : float;  (** probability of the first [Mcbr] target *)
  mutable mb_freq : float;
}

type frame_slot = {
  fs_id : int;
  fs_size : int;
  fs_var : Ir.var_id option;
  fs_array : bool;
}

type mfn = {
  mf_name : string;
  mf_line : int;
  mf_blocks : (int, mblock) Hashtbl.t;
  mf_entry : int;
  mutable mf_layout : int list;
  mf_param_locs : mloc list;
  mutable mf_frame : frame_slot list;  (** data slots *)
  mutable mf_spill_words : int;
  mutable mf_shrink_wrapped : bool;
}

type mprogram = { mfuncs : mfn list; mglobals : Ir.global_def list }

(** Backend configuration derived from the pipeline's pass toggles. All
    off reproduces the O0 backend. *)
type opts = {
  coalesce : bool;  (** gcc [tree-coalesce-vars] *)
  share_spill_slots : bool;  (** gcc [ira-share-spill-slots] *)
  shrink_wrap : bool;  (** gcc [shrink-wrap] *)
  schedule : bool;  (** gcc [schedule-insns2] (post-RA list scheduling) *)
  sched_keep_lines : bool;
      (** LLVM's machine scheduler moves debug locations with the
          instructions; gcc's RTL scheduler historically drops them —
          the single biggest reason schedule-insns2 tops the paper's
          gcc rankings while no scheduler appears in clang's *)
  sink : bool;  (** clang [Machine code sinking] *)
  tail_merge : bool;  (** gcc [crossjumping] / clang [Control Flow Optimizer] *)
  place_blocks : bool;
      (** gcc [reorder-blocks] / clang [Branch Prob BB Placement] *)
  icf : bool;  (** identical-code folding under gcc [toplevel-reorder] *)
}

let opts_o0 =
  {
    coalesce = false;
    share_spill_slots = false;
    shrink_wrap = false;
    schedule = false;
    sched_keep_lines = false;
    sink = false;
    tail_merge = false;
    place_blocks = false;
    icf = false;
  }

let mblock mfn l =
  match Hashtbl.find_opt mfn.mf_blocks l with
  | Some b -> b
  | None ->
      invalid_arg (Printf.sprintf "Mach.mblock: no block %d in %s" l mfn.mf_name)

let msuccs = function
  | Mret _ -> []
  | Mjmp l -> [ l ]
  | Mcbr (_, l1, l2) -> if l1 = l2 then [ l1 ] else [ l1; l2 ]

(* Locations written / read, for the machine passes and the location-list
   builder. [Mdbg] neither reads nor writes. *)

let writes = function
  | Mbin (_, d, _, _) | Mun (_, d, _) | Mmov (d, _) | Mload (d, _)
  | Minput d | Meof d
  | Mselect (d, _, _, _) ->
      [ d ]
  | Mcall (Some d, _, _) -> [ d ]
  | Mcall (None, _, _) | Mstore _ | Moutput _ | Mdbg _ -> []
  | Mvec (_, lanes) -> Array.to_list (Array.map (fun (d, _, _) -> d) lanes)

let mval_reads = function Loc l -> [ l ] | Cst _ -> []

let maddr_reads a = mval_reads a.mindex

let reads = function
  | Mbin (_, _, a, b) -> mval_reads a @ mval_reads b
  | Mun (_, _, a) | Mmov (_, a) | Moutput a -> mval_reads a
  | Mload (_, a) -> maddr_reads a
  | Mstore (a, v) -> maddr_reads a @ mval_reads v
  | Mcall (_, _, args) -> List.concat_map mval_reads args
  | Minput _ | Meof _ | Mdbg _ -> []
  | Mselect (_, c, a, b) -> mval_reads c @ mval_reads a @ mval_reads b
  | Mvec (_, lanes) ->
      Array.to_list lanes |> List.concat_map (fun (_, a, b) -> mval_reads a @ mval_reads b)

(** Does the instruction touch memory (frame or globals)? Used by the
    scheduler's dependence test and by shrink-wrapping. *)
let touches_memory = function
  | Mload _ | Mstore _ | Mcall _ -> true
  | _ -> false

let touches_frame mk =
  (match mk with
  | Mload (_, { mbase = Mframe _; _ }) | Mstore ({ mbase = Mframe _; _ }, _) ->
      true
  | _ -> false)
  || List.exists (function Pslot _ -> true | Preg _ -> false) (writes mk @ reads mk)

(** Side effects that pin an instruction in place. *)
let has_side_effect = function
  | Mstore _ | Mcall _ | Minput _ | Meof _ | Moutput _ -> true
  | _ -> false

let mval_to_string = function
  | Loc (Preg r) -> Printf.sprintf "R%d" r
  | Loc (Pslot s) -> Printf.sprintf "[sp+%d]" s
  | Cst n -> string_of_int n

let mloc_to_string l = mval_to_string (Loc l)

let maddr_to_string a =
  let base =
    match a.mbase with
    | Mframe s -> Printf.sprintf "frame%d" s
    | Mglobal g -> "@" ^ g
  in
  Printf.sprintf "%s[%s]" base (mval_to_string a.mindex)

let mkind_to_string = function
  | Mbin (op, d, a, b) ->
      Printf.sprintf "%s = %s %s, %s" (mloc_to_string d) (Ir.binop_name op)
        (mval_to_string a) (mval_to_string b)
  | Mun (op, d, a) ->
      Printf.sprintf "%s = %s %s" (mloc_to_string d) (Ir.unop_name op)
        (mval_to_string a)
  | Mmov (d, a) -> Printf.sprintf "%s = %s" (mloc_to_string d) (mval_to_string a)
  | Mload (d, a) ->
      Printf.sprintf "%s = load %s" (mloc_to_string d) (maddr_to_string a)
  | Mstore (a, v) ->
      Printf.sprintf "store %s, %s" (maddr_to_string a) (mval_to_string v)
  | Mcall (None, f, args) ->
      Printf.sprintf "call %s(%s)" f
        (String.concat ", " (List.map mval_to_string args))
  | Mcall (Some d, f, args) ->
      Printf.sprintf "%s = call %s(%s)" (mloc_to_string d) f
        (String.concat ", " (List.map mval_to_string args))
  | Minput d -> Printf.sprintf "%s = input" (mloc_to_string d)
  | Meof d -> Printf.sprintf "%s = eof" (mloc_to_string d)
  | Moutput v -> Printf.sprintf "output %s" (mval_to_string v)
  | Mselect (d, c, a, b) ->
      Printf.sprintf "%s = select %s ? %s : %s" (mloc_to_string d)
        (mval_to_string c) (mval_to_string a) (mval_to_string b)
  | Mvec (op, lanes) ->
      Printf.sprintf "vec.%s x%d" (Ir.binop_name op) (Array.length lanes)
  | Mdbg (v, Some (Dloc l)) ->
      Printf.sprintf "dbg %s = %s" (Ir.var_to_string v) (mloc_to_string l)
  | Mdbg (v, Some (Dconst n)) ->
      Printf.sprintf "dbg %s = const %d" (Ir.var_to_string v) n
  | Mdbg (v, None) ->
      Printf.sprintf "dbg %s = <optimized out>" (Ir.var_to_string v)
