#!/bin/sh
# CI entry point: build, run the tier-1 test suite, then smoke the
# pipeline with the differential oracle — 100 synthetic programs at a
# fixed seed, compiled at O0-O3 under both pipelines with the
# pass-boundary sanitizer on, executed on the VM and diffed against the
# source interpreter — then exercise the persistent artifact cache
# (cold/warm byte-identity, disk hits, clear) and run the
# benchmark-regression gate against the committed BENCH_baseline.json.
#
# Deterministic up to timing: lines bracketed [like this] carry wall
# times and lines starting with '#' carry volatile measurements; the CI
# determinism leg strips those (plus /tmp paths) and diffs the rest of
# two runs byte-for-byte.
set -eu
cd "$(dirname "$0")"

scratch="$(mktemp -d /tmp/debugtuner-ci.XXXXXX)"
trap 'rm -rf "$scratch"' EXIT INT TERM

# Byte-diff two outputs. On mismatch, fail with the head of the unified
# diff (scratch paths normalized, so two runs report identically) and
# the exact commands that reproduce the two sides — a CI failure must
# be actionable from the log alone.
ci_diff() {
  # $1/$2: files to compare; $3: one-line repro hint
  if ! diff -u "$1" "$2" > "$scratch/ci-diff.out" 2>&1; then
    echo "ci: byte-diff FAILED: $(basename "$1") vs $(basename "$2")" >&2
    sed "s#$scratch#SCRATCH#g" "$scratch/ci-diff.out" | head -40 >&2
    echo "ci: reproduce with: $3" >&2
    exit 1
  fi
}

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== differential fuzz smoke (100 programs, seed 1) =="
dune exec bin/debugtuner_cli.exe -- check --fuzz 100 --seed 1 \
  | tee "$scratch/check-fast.out"

echo "== vm conformance smoke (reference core, byte-identical stdout) =="
# DEBUGTUNER_VM=reference swaps every execution onto the pre-decode
# reference interpreter; the whole fuzz matrix — verdicts, costs,
# sanitizer counters — must match the fast core's stdout byte for byte.
DEBUGTUNER_VM=reference dune exec bin/debugtuner_cli.exe -- \
  check --fuzz 100 --seed 1 > "$scratch/check-reference.out"
ci_diff "$scratch/check-fast.out" "$scratch/check-reference.out" \
  "DEBUGTUNER_VM=reference dune exec bin/debugtuner_cli.exe -- check --fuzz 100 --seed 1"

echo "== observability smoke (profile zlib at O2, validate trace) =="
# `profile --trace` self-validates the written document (balanced B/E
# nesting, >= 1 span per executed pass) and exits non-zero on failure.
# Its stdout is a wall-time table (inherently run-dependent), so it
# goes to the scratch dir, keeping this script's output diffable.
dune exec bin/debugtuner_cli.exe -- profile -p zlib -O2 --pipeline gcc \
  --trace "$scratch/trace.json" > "$scratch/profile.out"

echo "== cache smoke (check twice on one fresh cache dir) =="
# A cold run populates the store; the warm run must serve every oracle
# verdict from disk with byte-identical stdout. Then `cache clear`
# must leave the directory with no entries.
mkdir "$scratch/cache"
dune exec bin/debugtuner_cli.exe -- check --fuzz 100 --seed 1 \
  --cache-dir "$scratch/cache" --json "$scratch/check-cold.json" \
  > "$scratch/check-cold.out"
dune exec bin/debugtuner_cli.exe -- check --fuzz 100 --seed 1 \
  --cache-dir "$scratch/cache" --json "$scratch/check-warm.json" \
  > "$scratch/check-warm.out"
ci_diff "$scratch/check-cold.out" "$scratch/check-warm.out" \
  "dune exec bin/debugtuner_cli.exe -- check --fuzz 100 --seed 1 --cache-dir DIR (twice)"
cat "$scratch/check-cold.out"
grep -q '"name": "store/oracle/hits", "value": [1-9]' "$scratch/check-warm.json" || {
  echo "cache smoke: warm run reported no disk hits" >&2
  exit 1
}
dune exec bin/debugtuner_cli.exe -- cache clear --cache-dir "$scratch/cache" \
  | sed "s#$scratch#SCRATCH#g"
remaining="$(find "$scratch/cache/objects" -type f 2>/dev/null | wc -l)"
[ "$remaining" -eq 0 ] || {
  echo "cache smoke: $remaining entr(ies) survived cache clear" >&2
  exit 1
}

echo "== prefix-cache smoke (check --fuzz 50, planner on vs off) =="
# Pass-prefix incremental compilation must be invisible everywhere but
# wall clock: the same fuzz matrix with the planner disabled has to
# produce byte-identical verdicts, sanitizer counters and stdout.
dune exec bin/debugtuner_cli.exe -- check --fuzz 50 --seed 1 \
  --json "$scratch/check-prefix-on.json" > "$scratch/check-prefix-on.out"
dune exec bin/debugtuner_cli.exe -- check --fuzz 50 --seed 1 --no-prefix-cache \
  --json "$scratch/check-prefix-off.json" > "$scratch/check-prefix-off.out"
ci_diff "$scratch/check-prefix-on.json" "$scratch/check-prefix-off.json" \
  "dune exec bin/debugtuner_cli.exe -- check --fuzz 50 --seed 1 --json J [--no-prefix-cache]"
ci_diff "$scratch/check-prefix-on.out" "$scratch/check-prefix-off.out" \
  "dune exec bin/debugtuner_cli.exe -- check --fuzz 50 --seed 1 [--no-prefix-cache]"

echo "== daemon smoke (serve + --connect, byte-identical to direct CLI) =="
# Start a daemon on a scratch socket (plus a TCP listener on an
# ephemeral port), drive rank/check/profile requests through --connect
# clients, and byte-diff rank/check stdout against direct (in-process)
# CLI runs. profile output is a wall-time table, so only its exit
# status is asserted. The daemon runs with --no-cache so both paths
# compute from the same cold state, and must exit 0 on SIGTERM after
# draining in-flight work and removing its socket.
cli=_build/default/bin/debugtuner_cli.exe
sock="$scratch/daemon.sock"
"$cli" serve --socket "$sock" --listen localhost:0 --no-cache \
  > "$scratch/daemon.log" 2>&1 &
daemon=$!
tries=0
until [ -S "$sock" ]; do
  tries=$((tries + 1))
  [ "$tries" -le 100 ] || { echo "daemon smoke: socket never appeared" >&2; exit 1; }
  sleep 0.1
done
"$cli" rank -k 5 --connect "$sock" > "$scratch/rank-daemon.out"
"$cli" rank -k 5 > "$scratch/rank-direct.out"
ci_diff "$scratch/rank-direct.out" "$scratch/rank-daemon.out" \
  "debugtuner_cli rank -k 5 [--connect SOCK]"
"$cli" check --fuzz 20 --seed 1 --connect "$sock" > "$scratch/check-daemon.out"
"$cli" check --fuzz 20 --seed 1 > "$scratch/check-direct.out"
ci_diff "$scratch/check-direct.out" "$scratch/check-daemon.out" \
  "debugtuner_cli check --fuzz 20 --seed 1 [--connect SOCK]"
"$cli" search --budget 8 --no-cache --connect "$sock" \
  -o "$scratch/front-daemon.json" > "$scratch/search-daemon.out"
"$cli" search --budget 8 --no-cache \
  -o "$scratch/front-direct.json" > "$scratch/search-direct.out"
ci_diff "$scratch/front-direct.json" "$scratch/front-daemon.json" \
  "debugtuner_cli search --budget 8 --no-cache -o F [--connect SOCK]"
"$cli" profile -p zlib -O2 --pipeline gcc --connect "$sock" > /dev/null

echo "== daemon TCP concurrency leg (4 parallel --connect clients) =="
# The daemon reported its ephemeral TCP port at startup; four clients
# hammer it at once over TCP — the executor pool may interleave them
# freely, but every response must still be byte-identical to a direct
# in-process run of the same command.
port="$(sed -n 's/.*listening on [^:]*:\([0-9][0-9]*\)$/\1/p' "$scratch/daemon.log")"
[ -n "$port" ] || { echo "daemon smoke: no TCP port in daemon log" >&2; exit 1; }
"$cli" rank -k 5 --connect "localhost:$port" > "$scratch/rank-tcp.out" &
tcp1=$!
"$cli" check --fuzz 20 --seed 1 --connect "localhost:$port" > "$scratch/check-tcp.out" &
tcp2=$!
"$cli" measure -p zlib -l O2 --connect "localhost:$port" > "$scratch/measure-zlib-tcp.out" &
tcp3=$!
"$cli" measure -p bzip2 -l O1 --connect "localhost:$port" > "$scratch/measure-bzip2-tcp.out" &
tcp4=$!
for pid in "$tcp1" "$tcp2" "$tcp3" "$tcp4"; do
  wait "$pid" || { echo "daemon smoke: a concurrent TCP client failed" >&2; exit 1; }
done
"$cli" measure -p zlib -l O2 > "$scratch/measure-zlib-direct.out"
"$cli" measure -p bzip2 -l O1 > "$scratch/measure-bzip2-direct.out"
ci_diff "$scratch/rank-direct.out" "$scratch/rank-tcp.out" \
  "debugtuner_cli rank -k 5 [--connect HOST:PORT] (4 parallel clients)"
ci_diff "$scratch/check-direct.out" "$scratch/check-tcp.out" \
  "debugtuner_cli check --fuzz 20 --seed 1 [--connect HOST:PORT] (4 parallel clients)"
ci_diff "$scratch/measure-zlib-direct.out" "$scratch/measure-zlib-tcp.out" \
  "debugtuner_cli measure -p zlib -l O2 [--connect HOST:PORT] (4 parallel clients)"
ci_diff "$scratch/measure-bzip2-direct.out" "$scratch/measure-bzip2-tcp.out" \
  "debugtuner_cli measure -p bzip2 -l O1 [--connect HOST:PORT] (4 parallel clients)"

echo "== daemon drain (SIGTERM with a request in flight) =="
# SIGTERM lands while a check request is still executing; the daemon
# must finish and answer it (client exits 0 with the direct run's
# bytes) before removing the socket and reporting a clean stop.
"$cli" check --fuzz 30 --seed 2 --connect "$sock" > "$scratch/check-drain.out" &
drain=$!
sleep 1
kill -TERM "$daemon"
wait "$daemon" || { echo "daemon smoke: daemon exited non-zero" >&2; exit 1; }
wait "$drain" || { echo "daemon smoke: in-flight request was dropped on shutdown" >&2; exit 1; }
"$cli" check --fuzz 30 --seed 2 > "$scratch/check-drain-direct.out"
ci_diff "$scratch/check-drain-direct.out" "$scratch/check-drain.out" \
  "debugtuner_cli check --fuzz 30 --seed 2 [--connect SOCK, SIGTERM mid-flight]"
[ ! -S "$sock" ] || { echo "daemon smoke: socket survived shutdown" >&2; exit 1; }
grep -q "daemon stopped" "$scratch/daemon.log" || {
  echo "daemon smoke: no clean shutdown message" >&2
  exit 1
}

echo "== shard smoke (2-shard corpus run + merge, byte-identical to single process) =="
# Two single-shard runs coordinate only through the shared cache dir,
# each writes a JSON partial, and `merge` must reproduce the
# single-process tables byte for byte. A bad shard spec must die with
# a one-line error, and a merge missing a shard must be refused.
mkdir "$scratch/shard-cache" "$scratch/partials"
shard_args="experiments --seed 3 --corpus 12 --config gcc-O2 --config clang-O1"
"$cli" $shard_args --cache-dir "$scratch/shard-cache" > "$scratch/corpus-single.out"
"$cli" $shard_args --shard 1/2 --cache-dir "$scratch/shard-cache" \
  --partial-dir "$scratch/partials" > /dev/null
"$cli" $shard_args --shard 2/2 --cache-dir "$scratch/shard-cache" \
  --partial-dir "$scratch/partials" > /dev/null
"$cli" merge --partial-dir "$scratch/partials" > "$scratch/corpus-merged.out"
ci_diff "$scratch/corpus-single.out" "$scratch/corpus-merged.out" \
  "debugtuner_cli experiments --seed 3 --corpus 12 ... [--shard I/2] + merge"
cat "$scratch/corpus-single.out"
if "$cli" $shard_args --shard 3/2 > /dev/null 2> "$scratch/shard-err.out"; then
  echo "shard smoke: --shard 3/2 was accepted" >&2
  exit 1
fi
grep -q "invalid shard spec" "$scratch/shard-err.out" || {
  echo "shard smoke: bad spec did not produce the one-line error" >&2
  exit 1
}
if "$cli" merge "$scratch/partials/shard-1-of-2.json" > /dev/null 2>&1; then
  echo "shard smoke: merge accepted an incomplete shard set" >&2
  exit 1
fi

echo "== search smoke (seeded frontier, resumable from the cache) =="
# The same (strategy, budget, seed) must print a byte-identical
# frontier JSON whether the evaluations run cold or come back from the
# persistent store, and the warm run must actually resume (report its
# evaluations as served from the store).
mkdir "$scratch/search-cache"
"$cli" search --budget 8 --seed 1 --cache-dir "$scratch/search-cache" \
  -o "$scratch/front-cold.json" > "$scratch/search-cold.out"
"$cli" search --budget 8 --seed 1 --cache-dir "$scratch/search-cache" \
  -o "$scratch/front-warm.json" > "$scratch/search-warm.out"
ci_diff "$scratch/front-cold.json" "$scratch/front-warm.json" \
  "debugtuner_cli search --budget 8 --seed 1 --cache-dir DIR -o F (twice)"
grep -q "(8 served from the store)" "$scratch/search-warm.out" || {
  echo "search smoke: warm search did not resume from the store" >&2
  exit 1
}

echo "== benchmark regression gate (table1+ranking+serve+vm+shard+search cold+warm vs BENCH_baseline.json) =="
# Cold and warm runs share one fresh cache dir; the warm run must be
# several times faster with a high disk hit rate, the cold run must not
# regress past the committed baseline, the cold ranking sweep must
# engage the pass-prefix planner, the vm scenario must show the
# direct-threaded core beating the reference interpreter, and the
# shard scenario's 2-process critical path must be well under the
# single-process run, and the searched Pareto front must weakly
# dominate every greedy dy point, and the serve scenario's 4-client
# concurrent phase must beat the serialized (inline-execution) phase
# (see bench/compare.ml; bounds tunable via DEBUGTUNER_BENCH_TOLERANCE
# / _WARM_FLOOR / _HIT_FLOOR / _PREFIX_FLOOR / _VM_FLOOR /
# _SHARD_FLOOR / _SEARCH_FLOOR / _SERVE_CONCURRENCY_FLOOR).
#
# Parallel speedup needs cores: the executor pool sizes itself to
# min(4, cores), so on a 4+-core runner we demand a real 2.5x win,
# on 2-3 cores a modest one, and on a single core we only assert the
# pool does not collapse throughput (domain GC sync makes true
# speedup impossible there).
cores="$( (nproc) 2>/dev/null || echo 1)"
if [ "$cores" -ge 4 ]; then
  DEBUGTUNER_SERVE_CONCURRENCY_FLOOR=2.5
elif [ "$cores" -ge 2 ]; then
  DEBUGTUNER_SERVE_CONCURRENCY_FLOOR=1.2
else
  DEBUGTUNER_SERVE_CONCURRENCY_FLOOR=0.45
fi
export DEBUGTUNER_SERVE_CONCURRENCY_FLOOR
mkdir "$scratch/bench-cache"
dune exec bench/main.exe -- --only table1 ranking serve vm shard search --cache-dir "$scratch/bench-cache" \
  --json "$scratch/bench-cold.json" > "$scratch/bench-cold.out"
dune exec bench/main.exe -- --only table1 ranking serve vm shard search --cache-dir "$scratch/bench-cache" \
  --json "$scratch/bench-warm.json" > "$scratch/bench-warm.out"
# Warm tables must be byte-identical to cold ones (only the bracketed
# timing lines may differ).
grep -v '^\[' "$scratch/bench-cold.out" > "$scratch/bench-cold.flat"
grep -v '^\[' "$scratch/bench-warm.out" > "$scratch/bench-warm.flat"
ci_diff "$scratch/bench-cold.flat" "$scratch/bench-warm.flat" \
  "dune exec bench/main.exe -- --only table1 ranking serve vm shard search --cache-dir DIR (twice)"
dune exec bench/compare.exe -- BENCH_baseline.json \
  "$scratch/bench-cold.json" "$scratch/bench-warm.json"

echo "== ci green =="
