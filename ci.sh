#!/bin/sh
# CI entry point: build, run the tier-1 test suite, then smoke the
# pipeline with the differential oracle — 100 synthetic programs at a
# fixed seed, compiled at O0-O3 under both pipelines with the
# pass-boundary sanitizer on, executed on the VM and diffed against the
# source interpreter. Fully deterministic: two runs produce identical
# output.
set -eu
cd "$(dirname "$0")"

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== differential fuzz smoke (100 programs, seed 1) =="
dune exec bin/debugtuner_cli.exe -- check --fuzz 100 --seed 1

echo "== ci green =="
