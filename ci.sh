#!/bin/sh
# CI entry point: build, run the tier-1 test suite, then smoke the
# pipeline with the differential oracle — 100 synthetic programs at a
# fixed seed, compiled at O0-O3 under both pipelines with the
# pass-boundary sanitizer on, executed on the VM and diffed against the
# source interpreter. Fully deterministic: two runs produce identical
# output.
set -eu
cd "$(dirname "$0")"

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== differential fuzz smoke (100 programs, seed 1) =="
dune exec bin/debugtuner_cli.exe -- check --fuzz 100 --seed 1

echo "== observability smoke (profile zlib at O2, validate trace) =="
# `profile --trace` self-validates the written document (balanced B/E
# nesting, >= 1 span per executed pass) and exits non-zero on failure.
trace_out="$(mktemp /tmp/debugtuner-ci-trace.XXXXXX.json)"
dune exec bin/debugtuner_cli.exe -- profile -p zlib -O2 --pipeline gcc \
  --trace "$trace_out"
rm -f "$trace_out"

echo "== ci green =="
